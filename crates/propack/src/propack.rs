//! The ProPack front-end: profile once, then plan and execute packed bursts.
//!
//! Workflow (Fig. 3 of the paper):
//!
//! 1. `Propack::build` profiles the application (interference campaign) and
//!    the platform (scaling probes) and fits the analytical models. All
//!    probe costs are recorded as [`Overhead`] — the paper's results
//!    include this overhead and so do ours.
//! 2. `plan` answers "how many functions per instance?" for any concurrency
//!    level and objective, purely from the models (no further runs).
//! 3. `execute` runs the planned burst on the platform and reports both the
//!    run and the accumulated overhead.

use crate::model::{CostFactors, PackingModel};
use crate::optimizer::{plan, plan_pooled, Objective, PackingPlan};
use crate::profiler::{default_scaling_levels, probe_scaling, profile_interference, Overhead};
use crate::qos::select_weights;
use crate::scaling::ScalingModel;
use crate::{InterferenceModel, ModelError};
use propack_platform::warmpool::PoolSnapshot;
use propack_platform::{BurstRequest, PlatformError, RunReport, ServerlessPlatform, WorkProfile};
use propack_stats::percentile::Percentile;
use serde::{Deserialize, Serialize};

/// Tunables for model building.
///
/// All fields are integral, so the config is totally ordered and usable as
/// part of a [`crate::cache::ModelCache`] key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProPackConfig {
    /// Instances per interference probe burst (§2.1: "less than 100
    /// function instance execution in parallel").
    pub probe_instances: u32,
    /// Sample every n-th packing degree (§2.1's alternate-point skipping).
    pub degree_step: u32,
    /// Concurrency levels for the scaling probe (§2.2: ten or fewer).
    pub scaling_levels: Vec<u32>,
    /// Root seed for all probe bursts.
    pub seed: u64,
}

impl Default for ProPackConfig {
    fn default() -> Self {
        ProPackConfig {
            probe_instances: 3,
            degree_step: 2,
            scaling_levels: default_scaling_levels(),
            seed: 0x9E37,
        }
    }
}

/// A built ProPack instance: fitted models plus accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Propack {
    /// The combined analytical model.
    pub model: PackingModel,
    /// Cost of building the model (included in reported results).
    pub overhead: Overhead,
    /// The application this model describes.
    pub work: WorkProfile,
    /// Platform display name.
    pub platform_name: String,
}

/// Outcome of `execute`: the run plus the model-building overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct ProPackOutcome {
    /// The plan that was executed.
    pub plan: PackingPlan,
    /// The platform's report for the packed burst.
    pub report: RunReport,
    /// Model-building overhead carried by this ProPack instance.
    pub overhead: Overhead,
}

impl ProPackOutcome {
    /// Total expense including the profiling overhead — the number the
    /// paper reports ("our performance and cost results include all the
    /// overhead of building this analytical model").
    pub fn expense_with_overhead_usd(&self) -> f64 {
        self.report.expense.total_usd() + self.overhead.expense_usd
    }

    /// Function-hours including profiling runs.
    pub fn function_hours_with_overhead(&self) -> f64 {
        self.report.function_hours() + self.overhead.function_hours
    }
}

impl Propack {
    /// Profile `work` on `platform` and fit the models.
    pub fn build<P: ServerlessPlatform + ?Sized>(
        platform: &P,
        work: &WorkProfile,
        config: &ProPackConfig,
    ) -> Result<Self, ModelError> {
        let mut overhead = Overhead::default();

        let interference = profile_interference(
            platform,
            work,
            config.probe_instances,
            config.degree_step,
            config.seed,
        )?;
        overhead.absorb(interference.overhead);

        let scaling_probe = probe_scaling(platform, &config.scaling_levels, config.seed)?;
        overhead.absorb(scaling_probe.overhead);

        let interference_model = InterferenceModel::fit(&interference.samples, work.mem_gb)?;
        let scaling_model = ScalingModel::fit(&scaling_probe.samples)?;
        let cost = CostFactors::derive(&platform.prices(), work, platform.limits().mem_gb);

        Ok(Propack {
            model: PackingModel {
                interference: interference_model,
                scaling: scaling_model,
                cost,
                p_max: interference.feasible_p_max,
            },
            overhead,
            work: work.clone(),
            platform_name: platform.name(),
        })
    }

    /// Build around a pre-fitted scaling model (the scaling model is
    /// application-independent and "needs to be developed only once" per
    /// platform — §2.2; this constructor is how experiments amortize it
    /// across applications).
    pub fn build_with_scaling<P: ServerlessPlatform + ?Sized>(
        platform: &P,
        work: &WorkProfile,
        config: &ProPackConfig,
        scaling: ScalingModel,
        scaling_overhead: Overhead,
    ) -> Result<Self, ModelError> {
        let mut overhead = Overhead::default();
        let interference = profile_interference(
            platform,
            work,
            config.probe_instances,
            config.degree_step,
            config.seed,
        )?;
        overhead.absorb(interference.overhead);
        overhead.absorb(scaling_overhead);

        let interference_model = InterferenceModel::fit(&interference.samples, work.mem_gb)?;
        let cost = CostFactors::derive(&platform.prices(), work, platform.limits().mem_gb);
        Ok(Propack {
            model: PackingModel {
                interference: interference_model,
                scaling,
                cost,
                p_max: interference.feasible_p_max,
            },
            overhead,
            work: work.clone(),
            platform_name: platform.name(),
        })
    }

    /// Plan the packing for concurrency `c` under `objective`, evaluating
    /// service time at the total-completion figure of merit.
    ///
    /// Fails with [`ModelError::InvalidWeight`] for a joint objective whose
    /// weight is outside `[0, 1]`.
    pub fn plan(&self, c: u32, objective: Objective) -> Result<PackingPlan, ModelError> {
        plan(&self.model, c, objective, Percentile::Total)
    }

    /// Warm-state-aware plan: like [`Propack::plan`], but the fitted
    /// model's fixed-cost (scaling) term is evaluated against the pool
    /// state at plan time — cold instances pay it, pooled instances start
    /// after their warm/re-specialization latency, and same-function warm
    /// starts earn the storage credit. With [`PoolSnapshot::cold`] this is
    /// bit-identical to [`Propack::plan`].
    pub fn plan_with_pool(
        &self,
        c: u32,
        objective: Objective,
        pool: &PoolSnapshot,
    ) -> Result<PackingPlan, ModelError> {
        plan_pooled(&self.model, c, objective, Percentile::Total, pool)
    }

    /// Plan for `c` under `objective` and build the matching
    /// [`BurstRequest`] — the unified burst entrypoint. Thread
    /// seed/faults/retry onto the request, then `run` it (or `run_pooled`
    /// against a warm pool).
    pub fn request(
        &self,
        c: u32,
        objective: Objective,
    ) -> Result<(PackingPlan, BurstRequest), ModelError> {
        let plan = self.plan(c, objective)?;
        Ok((
            plan,
            BurstRequest::new(self.work.clone(), c, plan.packing_degree),
        ))
    }

    /// [`Propack::request`] planned against a pool snapshot: the degree is
    /// chosen warm-state-aware, and the returned request is meant to be
    /// submitted with `run_pooled` on the pool the snapshot came from.
    pub fn request_with_pool(
        &self,
        c: u32,
        objective: Objective,
        pool: &PoolSnapshot,
    ) -> Result<(PackingPlan, BurstRequest), ModelError> {
        let plan = self.plan_with_pool(c, objective, pool)?;
        Ok((
            plan,
            BurstRequest::new(self.work.clone(), c, plan.packing_degree),
        ))
    }

    /// Plan with an explicit figure of merit (total / tail / median — §3).
    pub fn plan_with_metric(
        &self,
        c: u32,
        objective: Objective,
        metric: Percentile,
    ) -> Result<PackingPlan, ModelError> {
        plan(&self.model, c, objective, metric)
    }

    /// QoS-aware plan (Eqs. 8–9): pick the weight split whose tail service
    /// time meets `qos_bound_secs`, then plan jointly with it.
    pub fn plan_with_qos(
        &self,
        c: u32,
        qos_bound_secs: f64,
    ) -> Result<(PackingPlan, f64), ModelError> {
        let w_s = select_weights(&self.model, c, qos_bound_secs)?;
        Ok((
            plan(&self.model, c, Objective::Joint { w_s }, Percentile::Tail95)?,
            w_s,
        ))
    }

    /// Constrain the maximum packing degree by a per-instance latency cap
    /// (§2.1: `P_max` "can also be configured to be constrained at a degree
    /// lower than M_platform/M_func, depending upon the maximum allowable
    /// latency of a function instance ... e.g., meeting different quality
    /// of service (QoS) targets").
    ///
    /// Returns a copy whose `p_max` is the largest degree with predicted
    /// `ET(P) ≤ max_instance_latency_secs` (at least 1).
    pub fn with_latency_cap(mut self, max_instance_latency_secs: f64) -> Self {
        let mut cap = 1;
        for p in 1..=self.model.p_max {
            if self.model.exec_secs(p) <= max_instance_latency_secs {
                cap = p;
            } else {
                break;
            }
        }
        self.model.p_max = cap;
        self
    }

    /// Execute the planned packing on `platform` at concurrency `c`.
    ///
    /// A fault-free convenience over [`Propack::request`]: plan, build the
    /// [`BurstRequest`], run it, and report the single round together with
    /// the accumulated overhead. For faults, retries, or warm pools, call
    /// `request`/`request_with_pool` and drive the returned request
    /// yourself — the old `execute_faulted` shim is gone.
    pub fn execute<P: ServerlessPlatform + ?Sized>(
        &self,
        platform: &P,
        c: u32,
        objective: Objective,
        seed: u64,
    ) -> Result<ProPackOutcome, ModelError> {
        let (plan, request) = self.request(c, objective)?;
        let mut run = request.with_seed(seed).run(platform)?;
        // Fault-free means no resubmission: exactly one round, bit-identical
        // to a plain `run_burst` of the planned spec.
        debug_assert_eq!(run.rounds.len(), 1);
        let report = if run.rounds.is_empty() {
            return Err(ModelError::Platform(PlatformError::EmptyBurst));
        } else {
            run.rounds.swap_remove(0)
        };
        Ok(ProPackOutcome {
            plan,
            report,
            overhead: self.overhead,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::profile::PlatformProfile;
    use propack_platform::BurstSpec;
    use propack_platform::CloudPlatform;
    use propack_platform::PlatformBuilder;

    fn aws() -> CloudPlatform {
        PlatformBuilder::aws().build()
    }

    fn work() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 100.0).with_contention(0.2)
    }

    #[test]
    fn build_fits_sane_models() {
        let pp = Propack::build(&aws(), &work(), &ProPackConfig::default()).unwrap();
        // The instance mechanism uses rate = contention_per_gb × mem_gb =
        // 0.05 per degree; the fit should recover it within noise.
        assert!(
            (pp.model.interference.rate - 0.05).abs() < 0.01,
            "{}",
            pp.model.interference.rate
        );
        // Scaling polynomial must be convex increasing with a dominant
        // quadratic term.
        assert!(pp.model.scaling.beta1 > 0.0);
        assert!(
            pp.model.scaling.r_squared > 0.99,
            "{}",
            pp.model.scaling.r_squared
        );
        assert_eq!(pp.model.p_max, 40);
        assert!(pp.overhead.bursts > 20);
    }

    #[test]
    fn model_predicts_platform_behaviour() {
        // The built model's service-time prediction must track a fresh
        // simulator run at an unseen (concurrency, degree) point.
        let platform = aws();
        let pp = Propack::build(&platform, &work(), &ProPackConfig::default()).unwrap();
        let c = 3000u32;
        let p = 8u32;
        let predicted = pp.model.service_secs(c, p, Percentile::Total);
        let spec = BurstSpec::packed(work(), c, p).with_seed(77);
        let observed = platform.run_burst(&spec).unwrap().total_service_time();
        let rel = (predicted - observed).abs() / observed;
        assert!(
            rel < 0.1,
            "prediction off by {:.1}%: {predicted} vs {observed}",
            rel * 100.0
        );
    }

    #[test]
    fn plan_packs_at_high_concurrency_not_at_low() {
        let pp = Propack::build(&aws(), &work(), &ProPackConfig::default()).unwrap();
        let high = pp.plan(5000, Objective::default()).unwrap();
        assert!(
            high.packing_degree >= 5,
            "degree {} at C=5000",
            high.packing_degree
        );
        let low = pp.plan(20, Objective::ServiceTime).unwrap();
        assert!(
            low.packing_degree <= 3,
            "degree {} at C=20",
            low.packing_degree
        );
    }

    #[test]
    fn execute_beats_no_packing_at_high_concurrency() {
        // The headline claim, end to end: ProPack's packed run has far
        // lower service time and expense than the unpacked baseline.
        let platform = aws();
        let w = work();
        let pp = Propack::build(&platform, &w, &ProPackConfig::default()).unwrap();
        let c = 5000;
        let outcome = pp.execute(&platform, c, Objective::default(), 5).unwrap();
        let baseline = platform
            .run_burst(&BurstSpec::new(w, c, 1).with_seed(5))
            .unwrap();

        let service_gain =
            1.0 - outcome.report.total_service_time() / baseline.total_service_time();
        assert!(service_gain > 0.5, "service gain {:.2}", service_gain);

        let expense_gain = 1.0 - outcome.expense_with_overhead_usd() / baseline.expense.total_usd();
        assert!(expense_gain > 0.3, "expense gain {:.2}", expense_gain);
    }

    #[test]
    fn scaling_model_is_reusable_across_apps() {
        // Fit scaling once, reuse for a second application; predictions
        // must match a model built from scratch (application-independence,
        // Fig. 5b).
        let platform = aws();
        let cfg = ProPackConfig::default();
        let first = Propack::build(&platform, &work(), &cfg).unwrap();
        let other = WorkProfile::synthetic("other", 0.5, 60.0).with_contention(0.1);
        let reused = Propack::build_with_scaling(
            &platform,
            &other,
            &cfg,
            first.model.scaling,
            Overhead::default(),
        )
        .unwrap();
        let fresh = Propack::build(&platform, &other, &cfg).unwrap();
        let a = reused.model.service_secs(2000, 5, Percentile::Total);
        let b = fresh.model.service_secs(2000, 5, Percentile::Total);
        assert!((a - b).abs() / b < 0.02, "{a} vs {b}");
    }

    #[test]
    fn qos_plan_meets_bound_in_model() {
        let platform = aws();
        // Xapian-like calibration: the expense optimum packs harder than
        // the service optimum, so a tight tail bound genuinely constrains.
        let xapian_like = WorkProfile::synthetic("xapian", 0.4, 50.0).with_contention(0.125);
        let pp = Propack::build(&platform, &xapian_like, &ProPackConfig::default()).unwrap();
        let c = 5000;
        let unconstrained = pp
            .plan_with_metric(c, Objective::Expense, Percentile::Tail95)
            .unwrap()
            .predicted_service_secs;
        let best = pp
            .plan_with_metric(c, Objective::ServiceTime, Percentile::Tail95)
            .unwrap();
        let bound = best.predicted_service_secs * 1.04;
        assert!(bound < unconstrained, "test bound must actually constrain");
        let (plan, w_s) = pp.plan_with_qos(c, bound).unwrap();
        assert!(plan.predicted_service_secs <= bound);
        assert!(w_s > 0.0);
    }

    #[test]
    fn latency_cap_tightens_p_max_and_plans() {
        let platform = aws();
        let pp = Propack::build(&platform, &work(), &ProPackConfig::default()).unwrap();
        // Cap the per-instance latency at ET(5): degrees above 5 are out.
        let cap_secs = pp.model.exec_secs(5) + 1e-9;
        let capped = pp.clone().with_latency_cap(cap_secs);
        assert_eq!(capped.model.p_max, 5);
        let plan = capped.plan(5000, Objective::default()).unwrap();
        assert!(plan.packing_degree <= 5);
        assert!(capped.model.exec_secs(plan.packing_degree) <= cap_secs);
        // A cap below ET(1) still leaves the always-feasible degree 1.
        let floor = pp.with_latency_cap(0.001);
        assert_eq!(floor.model.p_max, 1);
    }

    #[test]
    fn provider_side_mitigation_lowers_optimal_degree() {
        // §5: "if the cloud provider side mitigation is effective, the
        // optimal packing degree for ProPack is likely to decrease". Model
        // a provider that halves its scheduler's occupancy-scan cost and
        // check that ProPack packs less.
        let baseline = aws();
        let mut improved_profile = PlatformProfile::aws_lambda();
        improved_profile.control.sched_per_inflight_secs /= 4.0;
        improved_profile.control.sched_base_secs /= 4.0;
        let improved = CloudPlatform::new(improved_profile);

        let cfg = ProPackConfig::default();
        let pp_base = Propack::build(&baseline, &work(), &cfg).unwrap();
        let pp_improved = Propack::build(&improved, &work(), &cfg).unwrap();
        let d_base = pp_base
            .plan(5000, Objective::ServiceTime)
            .unwrap()
            .packing_degree;
        let d_improved = pp_improved
            .plan(5000, Objective::ServiceTime)
            .unwrap()
            .packing_degree;
        assert!(
            d_improved < d_base,
            "a better backend should reduce packing: {d_base} → {d_improved}"
        );
    }

    #[test]
    fn overhead_is_recorded_and_small() {
        let platform = aws();
        let pp = Propack::build(&platform, &work(), &ProPackConfig::default()).unwrap();
        let outcome = pp
            .execute(&platform, 5000, Objective::default(), 2)
            .unwrap();
        assert!(outcome.overhead.expense_usd > 0.0);
        // §2.1: overhead is minimal relative to what the baseline (the
        // thing ProPack is replacing) would have spent at this concurrency.
        let baseline = platform
            .run_burst(&BurstSpec::new(work(), 5000, 1).with_seed(9))
            .unwrap();
        assert!(
            outcome.overhead.expense_usd < 0.1 * baseline.expense.total_usd(),
            "overhead {} vs baseline {}",
            outcome.overhead.expense_usd,
            baseline.expense.total_usd()
        );
    }

    #[test]
    fn cold_pool_plans_match_plain_plans_bit_for_bit() {
        let pp = Propack::build(&aws(), &work(), &ProPackConfig::default()).unwrap();
        for c in [20u32, 500, 5000] {
            for objective in [
                Objective::ServiceTime,
                Objective::Expense,
                Objective::Joint { w_s: 0.5 },
            ] {
                let plain = pp.plan(c, objective).unwrap();
                let pooled = pp
                    .plan_with_pool(c, objective, &PoolSnapshot::cold())
                    .unwrap();
                assert_eq!(plain.packing_degree, pooled.packing_degree);
                assert_eq!(
                    plain.predicted_service_secs.to_bits(),
                    pooled.predicted_service_secs.to_bits()
                );
                assert_eq!(
                    plain.predicted_expense_usd.to_bits(),
                    pooled.predicted_expense_usd.to_bits()
                );
            }
        }
    }

    #[test]
    fn request_reproduces_execute() {
        let platform = aws();
        let pp = Propack::build(&platform, &work(), &ProPackConfig::default()).unwrap();
        let outcome = pp
            .execute(&platform, 5000, Objective::default(), 7)
            .unwrap();
        let (plan, request) = pp.request(5000, Objective::default()).unwrap();
        assert_eq!(plan.packing_degree, outcome.plan.packing_degree);
        let run = request.with_seed(7).run(&platform).unwrap();
        assert_eq!(
            run.total_service_secs().to_bits(),
            outcome.report.total_service_time().to_bits()
        );
        assert_eq!(
            run.expense_usd().to_bits(),
            outcome.report.expense.total_usd().to_bits()
        );
    }

    #[test]
    fn warm_snapshot_requests_can_pick_a_different_degree() {
        let pp = Propack::build(&aws(), &work(), &ProPackConfig::default()).unwrap();
        let warm = PoolSnapshot {
            warm_available: 5000,
            shared_available: 0,
            warm_start_secs: 0.05,
            respecialize_secs: 0.3,
            sched_secs_per_placement: 0.0,
        };
        let (cold_plan, _) = pp.request(5000, Objective::ServiceTime).unwrap();
        let (warm_plan, req) = pp
            .request_with_pool(5000, Objective::ServiceTime, &warm)
            .unwrap();
        assert!(
            warm_plan.packing_degree <= cold_plan.packing_degree,
            "an all-warm fleet never favors more packing: {} vs {}",
            warm_plan.packing_degree,
            cold_plan.packing_degree
        );
        assert_eq!(req.packing_degree(), warm_plan.packing_degree);
    }
}
