//! Host-timing harness for `propack replay`: timed runs and
//! `BENCH_replay.json`.
//!
//! This lives in the sweep crate, not the replay crate, because only
//! wall-clock-exempt crates may read `std::time` (the workspace determinism
//! policy): [`propack_replay::ReplayEngine`] takes an injected clock, and
//! [`timed_replay`] is the one place that injects a real one. The JSON
//! follows the `BENCH_sweep.json` conventions — hand-rolled (no serde
//! dependency), host timing only, with the warmup run excluded from the
//! reported timings by the caller.

use std::time::Instant;

use propack_model::cache::ModelCache;
use propack_platform::{ServerlessPlatform, WorkProfile};
use propack_replay::{ArrivalTrace, Controller, ReplayEngine, ReplayError, ReplayReport};

use crate::report::{escape_json, json_f64, RunTiming};

/// Run one replay with host timing captured: the report's `fit_ms` and
/// per-epoch `run_ms` fields are real measurements, and the returned
/// [`RunTiming`] covers the whole replay. Simulated results are identical
/// to [`ReplayEngine::run`] — the clock feeds timing fields only.
pub fn timed_replay(
    engine: &ReplayEngine,
    platform: &dyn ServerlessPlatform,
    work: &WorkProfile,
    trace: &ArrivalTrace,
    controller: &Controller,
    models: &ModelCache,
) -> Result<(ReplayReport, RunTiming), ReplayError> {
    let origin = Instant::now();
    let clock = move || origin.elapsed().as_secs_f64();
    let report = engine.run_with_clock(platform, work, trace, controller, models, &clock)?;
    Ok((
        report,
        RunTiming {
            threads: 1,
            wall_secs: origin.elapsed().as_secs_f64(),
        },
    ))
}

/// Compose `BENCH_replay.json` from the reports of one replay pass (one
/// report per controller, all over the same trace) plus the pass timings.
///
/// `runs` follows the `BENCH_sweep.json` warmup convention: the caller runs
/// one untimed warmup pass first and reports only the timed passes here.
/// `outputs_identical` says whether every pass rendered byte-identically
/// (`None` when only one timed pass was made).
pub fn replay_bench_json(
    reports: &[ReplayReport],
    runs: &[RunTiming],
    outputs_identical: Option<bool>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"replay\",\n");
    let (trace, platform, workload, epoch_secs, epochs) =
        reports
            .first()
            .map_or((String::new(), String::new(), String::new(), 0.0, 0), |r| {
                (
                    r.trace.clone(),
                    r.platform.clone(),
                    r.workload.clone(),
                    r.epoch_secs,
                    r.epochs.len(),
                )
            });
    out.push_str(&format!("  \"trace\": \"{}\",\n", escape_json(&trace)));
    out.push_str(&format!(
        "  \"platform\": \"{}\",\n",
        escape_json(&platform)
    ));
    out.push_str(&format!(
        "  \"workload\": \"{}\",\n",
        escape_json(&workload)
    ));
    out.push_str(&format!("  \"epoch_secs\": {},\n", json_f64(epoch_secs)));
    out.push_str(&format!("  \"epochs\": {epochs},\n"));

    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"threads\": {}, \"wall_secs\": {}}}{}\n",
            run.threads,
            json_f64(run.wall_secs),
            comma,
        ));
    }
    out.push_str("  ],\n");
    match outputs_identical {
        Some(b) => out.push_str(&format!("  \"outputs_identical\": {b},\n")),
        None => out.push_str("  \"outputs_identical\": null,\n"),
    }

    out.push_str("  \"controllers\": [\n");
    for (i, report) in reports.iter().enumerate() {
        let comma = if i + 1 < reports.len() { "," } else { "" };
        let epoch_run_ms: Vec<String> = report.epochs.iter().map(|e| json_f64(e.run_ms)).collect();
        out.push_str(&format!(
            "    {{\"controller\": \"{}\", \"fit_ms\": {}, \"total_service_secs\": {}, \"total_expense_usd\": {}, \"qos_violations\": {}, \"forecast_mae\": {}, \"service_regret_secs\": {}, \"expense_regret_usd\": {}, \"epoch_run_ms\": [{}]}}{}\n",
            escape_json(&report.controller),
            json_f64(report.fit_ms),
            json_f64(report.total_service_secs()),
            json_f64(report.total_expense_usd()),
            report.qos_violations(),
            report
                .mean_abs_forecast_error()
                .map_or("null".to_string(), json_f64),
            report
                .total_service_regret_secs()
                .map_or("null".to_string(), json_f64),
            report
                .total_expense_regret_usd()
                .map_or("null".to_string(), json_f64),
            epoch_run_ms.join(", "),
            comma,
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::PlatformBuilder;
    use propack_replay::ReplaySpec;

    #[test]
    fn timed_replay_measures_without_changing_results() {
        let platform = PlatformBuilder::aws().build();
        let work = WorkProfile::synthetic("w", 0.25, 45.0).with_contention(0.2);
        let trace = ArrivalTrace::poisson("w", 0.5, 300.0, 5).expect("trace");
        let engine = ReplayEngine::new(ReplaySpec {
            epoch_secs: 100.0,
            ..ReplaySpec::default()
        });
        let controller = Controller::parse("propack:ewma").expect("controller");
        let models = ModelCache::new();
        let (timed, timing) = timed_replay(&engine, &platform, &work, &trace, &controller, &models)
            .expect("timed run");
        let untimed = engine
            .run(&platform, &work, &trace, &controller, &models)
            .expect("untimed run");
        assert_eq!(timed.render(), untimed.render());
        assert!(timing.wall_secs > 0.0);
        assert!(timed.fit_ms > 0.0, "real clock reaches the fit timer");
        assert!(untimed.fit_ms == 0.0, "null clock reports zeros");
    }

    #[test]
    fn replay_bench_json_is_wellformed_enough() {
        let platform = PlatformBuilder::aws().build();
        let work = WorkProfile::synthetic("w", 0.25, 45.0).with_contention(0.2);
        let trace = ArrivalTrace::poisson("w", 0.5, 200.0, 5).expect("trace");
        let engine = ReplayEngine::new(ReplaySpec {
            epoch_secs: 100.0,
            ..ReplaySpec::default()
        });
        let models = ModelCache::new();
        let mut reports = Vec::new();
        let mut runs = Vec::new();
        for key in ["fixed:4", "propack:ewma"] {
            let controller = Controller::parse(key).expect("controller");
            let (report, timing) =
                timed_replay(&engine, &platform, &work, &trace, &controller, &models).expect("run");
            reports.push(report);
            runs.push(timing);
        }
        let json = replay_bench_json(&reports, &runs, Some(true));
        assert!(json.contains("\"bench\": \"replay\""));
        assert!(json.contains("\"controller\": \"fixed-4\""));
        assert!(json.contains("\"controller\": \"propack-ewma\""));
        assert!(json.contains("\"epoch_run_ms\""));
        assert!(json.contains("\"outputs_identical\": true"));
        // Regret is off in this spec, so both gap fields render as null.
        assert!(json.contains("\"service_regret_secs\": null"));
        assert!(json.contains("\"expense_regret_usd\": null"));
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }
}
