//! simlint fixture: deliberate `float-eq` violations (2 sites); the integer
//! comparison is exempt.

pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

pub fn is_not_unit(x: f64) -> bool {
    1.0 != x
}

pub fn int_compare_is_fine(n: u32) -> bool {
    n == 0
}
