//! The unified burst entrypoint: build once, submit anywhere.
//!
//! Before this module, running a burst meant picking among four entrypoints
//! spread over three crates — `run_burst` (plain), strategy `run_faulted`
//! (faults, no resubmission), the orchestrator's `run_burst_with_retry`
//! (faults + resubmission rounds), and `Propack::execute_faulted` (planned
//! degree + faults) — each threading a different subset of `FaultSpec`,
//! `RetryPolicy` and warm state. [`BurstRequest`] collapses them: one
//! builder carries the workload, concurrency, packing degree, seed, fault
//! processes, retry policy, and (optionally) a [`WarmPool`] handle; one
//! submit path owns the resubmission loop and the pool lifecycle.
//!
//! ## Resubmission rounds
//!
//! Failed functions are resubmitted as smaller follow-up bursts, up to
//! [`RetryPolicy::max_rounds`](propack_simcore::RetryPolicy) submissions.
//! Rounds serialize — a follow-up is only submitted once the previous round
//! completed — so the end-to-end service time is the sum of round makespans.
//! Round `k` draws its seed as a pure function of the original seed and `k`
//! (round 0 uses the original seed verbatim), which keeps a fault-free
//! pooled-but-cold run bit-identical to a plain [`ServerlessPlatform::run_burst`].
//!
//! ## Warm-pool lifecycle
//!
//! When submitted with [`BurstRequest::run_pooled`], the original round
//! acquires warm containers from the pool (follow-up rounds re-drive
//! *failed* work, whose containers are gone — they always start cold), and
//! every instance that completes without abandoning its functions is checked
//! back in at its absolute finish time. Crashed-out instances are **not**
//! returned: a crash destroys the container, which is exactly the
//! fault/keep-alive interaction the tests pin down.
//!
//! Billing splits along the warm/cold boundary here, not inside the
//! platform: compute seconds are billed identically either way (provisioning
//! was never billed, §2.3), but a same-function warm start skips re-staging
//! the function's dependencies through common storage, so the request earns
//! a storage credit per warm instance (see
//! [`billing::warm_reuse_credit`]). Re-specialized Pagurus donors still
//! stage the new function's dependencies and earn no credit — their saving
//! is latency, not storage.

use crate::billing;
use crate::burst::BurstSpec;
use crate::error::PlatformError;
use crate::platform::ServerlessPlatform;
use crate::report::{FaultSummary, RunReport};
use crate::warmpool::{PoolGrant, WarmPool};
use crate::work::WorkProfile;
use propack_simcore::{FaultSpec, RetryPolicy};
use std::sync::Arc;

/// Seed for resubmission round `round` (round 0 reproduces the request seed
/// exactly, keeping fault-free runs bit-identical to a plain burst).
pub(crate) fn round_seed(seed: u64, round: u32) -> u64 {
    seed ^ u64::from(round).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One burst submission: `concurrency` functions of a workload packed at
/// `packing_degree`, with faults, retries and warm state all in one place.
///
/// ```
/// use propack_platform::prelude::*;
///
/// let platform = PlatformBuilder::aws().build();
/// let work = WorkProfile::synthetic("noop", 0.25, 10.0);
/// let run = BurstRequest::new(work, 100, 4).with_seed(7).run(&platform).unwrap();
/// assert_eq!(run.rounds.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BurstRequest {
    workload: Arc<WorkProfile>,
    concurrency: u32,
    packing_degree: u32,
    seed: u64,
    faults: FaultSpec,
    retry: RetryPolicy,
    fluid_min_cohort: Option<u32>,
}

impl BurstRequest {
    /// A fault-free request for `concurrency` functions packed at `degree`.
    /// Accepts an owned [`WorkProfile`] or a shared `Arc` (pass the `Arc`
    /// when issuing many requests of the same workload).
    pub fn new(workload: impl Into<Arc<WorkProfile>>, concurrency: u32, degree: u32) -> Self {
        BurstRequest {
            workload: workload.into(),
            concurrency,
            packing_degree: degree.max(1),
            seed: 0,
            faults: FaultSpec::none(),
            retry: RetryPolicy::default(),
            fluid_min_cohort: None,
        }
    }

    /// Builder-style seed setter.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style fault-injection setter.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Builder-style retry-policy setter.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder-style fluid-approximation opt-in, passed through to every
    /// round's [`BurstSpec::with_fluid`]: rounds whose cohort reaches
    /// `min_cohort` instances take the closed-form fluid path instead of
    /// the per-instance event path.
    pub fn with_fluid(mut self, min_cohort: u32) -> Self {
        self.fluid_min_cohort = Some(min_cohort.max(1));
        self
    }

    /// The workload this request will run.
    pub fn workload(&self) -> &Arc<WorkProfile> {
        &self.workload
    }

    /// Requested concurrency (`C`).
    pub fn concurrency(&self) -> u32 {
        self.concurrency
    }

    /// Requested packing degree (`P`).
    pub fn packing_degree(&self) -> u32 {
        self.packing_degree
    }

    /// Instances the original round will spawn: `ceil(C / min(P, C))` —
    /// what a caller must reserve (fleet slots, warm containers) before
    /// submitting through [`BurstRequest::run_granted`].
    pub fn round0_instances(&self) -> u32 {
        if self.concurrency == 0 {
            return 0;
        }
        let p = self.packing_degree.max(1).min(self.concurrency);
        self.concurrency.div_ceil(p)
    }

    /// Submit without a warm pool: every instance cold-starts. Fault-free,
    /// this is bit-identical to a plain [`ServerlessPlatform::run_burst`]
    /// of the round-0 spec.
    pub fn run<P: ServerlessPlatform + ?Sized>(
        &self,
        platform: &P,
    ) -> Result<BurstRun, PlatformError> {
        self.submit(platform, None, 0.0)
    }

    /// Submit against a [`WarmPool`] at simulated time `now`: the original
    /// round acquires warm containers, surviving instances are checked back
    /// in at their finish times, and the run carries the warm/cold billing
    /// split.
    pub fn run_pooled<P: ServerlessPlatform + ?Sized>(
        &self,
        platform: &P,
        pool: &mut WarmPool,
        now: f64,
    ) -> Result<BurstRun, PlatformError> {
        self.submit(platform, Some(pool), now)
    }

    /// Split-phase pooled submission for *shared* pools: run with container
    /// grants the caller already acquired (via [`WarmPool::acquire_counted`])
    /// and return the check-in times for the caller to apply afterwards.
    ///
    /// This is the shape the fleet engine's deterministic occupancy merge
    /// needs — acquisition and check-in happen in a serial tenant-id-ordered
    /// phase while the bursts themselves run on worker threads. The
    /// sequence `acquire_counted` → `run_granted` → `check_in` each returned
    /// time (in order) is bit-identical to [`BurstRequest::run_pooled`]:
    /// both walk the same rounds, and the pool is neither read nor written
    /// between round 0's acquisition and the final check-in in either path.
    pub fn run_granted<P: ServerlessPlatform + ?Sized>(
        &self,
        platform: &P,
        grant: &PoolGrant,
        now: f64,
    ) -> Result<GrantedRun, PlatformError> {
        let mut rounds = Vec::new();
        let mut remaining = self.concurrency;
        let mut round = 0u32;
        let mut offset = 0.0;
        let mut warm_credit_usd = 0.0;
        let mut check_ins = Vec::new();
        while remaining > 0 && round < self.retry.max_rounds.max(1) {
            let p = self.packing_degree.max(1).min(remaining);
            let mut spec = BurstSpec::packed(Arc::clone(&self.workload), remaining, p)
                .with_seed(round_seed(self.seed, round))
                .with_faults(self.faults)
                .with_retry(self.retry);
            if let Some(mc) = self.fluid_min_cohort {
                spec = spec.with_fluid(mc);
            }
            if round == 0 && !grant.grants.is_empty() {
                spec = spec.with_warm_starts(grant.grants.clone());
            }
            let report = platform.run_burst(&spec)?;
            if round == 0 && grant.warm > 0 {
                warm_credit_usd = billing::warm_reuse_credit(
                    &report.expense,
                    grant.warm.min(u64::from(u32::MAX)) as u32,
                    report.instances.len() as u32,
                );
            }
            for rec in &report.instances {
                if !rec.failed {
                    check_ins.push(now + offset + rec.finished_at);
                }
            }
            offset += report.total_service_time();
            let failed = report.faults.failed_functions.min(u64::from(remaining));
            rounds.push(report);
            remaining = failed as u32;
            round += 1;
        }
        Ok(GrantedRun {
            run: BurstRun {
                rounds,
                abandoned_functions: u64::from(remaining),
                warm_grants: grant.warm,
                shared_grants: grant.shared,
                warm_credit_usd,
            },
            check_ins,
        })
    }

    fn submit<P: ServerlessPlatform + ?Sized>(
        &self,
        platform: &P,
        mut pool: Option<&mut WarmPool>,
        now: f64,
    ) -> Result<BurstRun, PlatformError> {
        let mut rounds = Vec::new();
        let mut remaining = self.concurrency;
        let mut round = 0u32;
        // Rounds serialize; `offset` is the simulated time already consumed
        // by earlier rounds, so check-ins land at absolute finish times.
        let mut offset = 0.0;
        let mut warm_grants = 0u64;
        let mut shared_grants = 0u64;
        let mut warm_credit_usd = 0.0;
        while remaining > 0 && round < self.retry.max_rounds.max(1) {
            // A follow-up round smaller than the packing degree packs what
            // it has — never more functions per instance than remain.
            let p = self.packing_degree.max(1).min(remaining);
            let mut spec = BurstSpec::packed(Arc::clone(&self.workload), remaining, p)
                .with_seed(round_seed(self.seed, round))
                .with_faults(self.faults)
                .with_retry(self.retry);
            if let Some(mc) = self.fluid_min_cohort {
                spec = spec.with_fluid(mc);
            }
            if round == 0 {
                if let Some(pool) = pool.as_deref_mut() {
                    let before = pool.stats();
                    let grants = pool.acquire(&self.workload.name, spec.instances, now);
                    let after = pool.stats();
                    warm_grants = after.warm_grants - before.warm_grants;
                    shared_grants = after.shared_grants - before.shared_grants;
                    if !grants.is_empty() {
                        spec = spec.with_warm_starts(grants);
                    }
                }
            }
            let report = platform.run_burst(&spec)?;
            if round == 0 && warm_grants > 0 {
                // Only same-function warm starts skip dependency staging;
                // re-specialized donors restage and earn no credit.
                // `warm_grants <= instances` holds by construction: the pool
                // granted at most `spec.instances` containers, and round 0's
                // report has exactly that many records — the credit's
                // saturating clamp (and its debug assert) never engage here.
                warm_credit_usd = billing::warm_reuse_credit(
                    &report.expense,
                    warm_grants.min(u64::from(u32::MAX)) as u32,
                    report.instances.len() as u32,
                );
            }
            if let Some(pool) = pool.as_deref_mut() {
                for rec in &report.instances {
                    if !rec.failed {
                        pool.check_in(&self.workload.name, 1, now + offset + rec.finished_at);
                    }
                }
            }
            offset += report.total_service_time();
            // The platform counts failures in whole-instance units of `p`,
            // so a remainder instance can report more failed functions than
            // were submitted; cap the resubmission at what remains.
            let failed = report.faults.failed_functions.min(u64::from(remaining));
            rounds.push(report);
            remaining = failed as u32;
            round += 1;
        }
        Ok(BurstRun {
            rounds,
            abandoned_functions: u64::from(remaining),
            warm_grants,
            shared_grants,
            warm_credit_usd,
        })
    }
}

/// Outcome of a split-phase [`BurstRequest::run_granted`] submission: the
/// run itself plus the pool check-ins the caller still owes. Applying
/// `check_ins` in order via [`WarmPool::check_in`] (count 1 each) leaves
/// the pool in the exact state [`BurstRequest::run_pooled`] would have.
#[derive(Debug, Clone, PartialEq)]
pub struct GrantedRun {
    /// The burst outcome, identical to what [`BurstRequest::run_pooled`]
    /// returns for the same grant.
    pub run: BurstRun,
    /// Absolute finish times of every surviving instance, in round order —
    /// the deferred `check_in` calls of the pooled path.
    pub check_ins: Vec<f64>,
}

/// Outcome of a [`BurstRequest`] submission: per-round reports plus the
/// warm/cold split the pool produced.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstRun {
    /// Per-round platform reports; `rounds[0]` is the original submission.
    pub rounds: Vec<RunReport>,
    /// Functions still failed after the final round — nonzero means the
    /// request completed *partially*.
    pub abandoned_functions: u64,
    /// Same-function warm starts granted to the original round.
    pub warm_grants: u64,
    /// Pagurus re-specializations granted to the original round.
    pub shared_grants: u64,
    /// Storage credit earned by warm reuse (see
    /// [`billing::warm_reuse_credit`]); already subtracted by
    /// [`BurstRun::expense_usd`].
    pub warm_credit_usd: f64,
}

impl BurstRun {
    /// End-to-end service time: rounds serialize, so makespans add.
    pub fn total_service_secs(&self) -> f64 {
        self.rounds.iter().map(|r| r.total_service_time()).sum()
    }

    /// Total bill across all rounds (failed attempts are still billed),
    /// minus the warm-reuse storage credit.
    pub fn expense_usd(&self) -> f64 {
        self.rounds
            .iter()
            .map(|r| r.expense.total_usd())
            .sum::<f64>()
            - self.warm_credit_usd
    }

    /// Billed compute across all rounds, function-hours.
    pub fn function_hours(&self) -> f64 {
        self.rounds.iter().map(|r| r.function_hours()).sum()
    }

    /// Instances spawned across all rounds.
    pub fn instances(&self) -> u32 {
        self.rounds.iter().map(|r| r.instances_requested).sum()
    }

    /// Fault counters merged across all rounds.
    pub fn faults(&self) -> FaultSummary {
        let mut total = FaultSummary::default();
        for r in &self.rounds {
            total.merge(&r.faults);
        }
        total
    }

    /// Follow-up submissions beyond the original burst.
    pub fn resubmission_rounds(&self) -> u32 {
        self.rounds.len() as u32 - 1
    }

    /// Instances served warm (same-function or re-specialized).
    pub fn warm_instances(&self) -> u64 {
        self.warm_grants + self.shared_grants
    }

    /// True when functions remain failed after every round.
    pub fn is_partial(&self) -> bool {
        self.abandoned_functions > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::platform::CloudPlatform;
    use crate::warmpool::{KeepAlivePolicy, WarmPoolConfig, WARM_START_SECS};

    fn aws() -> CloudPlatform {
        PlatformBuilder::aws().build()
    }

    fn work() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 60.0)
            .with_contention(0.2)
            .with_storage(0.01, 4)
    }

    fn fixed_pool(ttl: f64) -> WarmPool {
        WarmPool::new(
            WarmPoolConfig::cold().with_policy(KeepAlivePolicy::FixedKeepAlive { idle_ttl: ttl }),
        )
    }

    #[test]
    fn fault_free_request_matches_plain_burst() {
        let platform = aws();
        let run = BurstRequest::new(work(), 400, 4)
            .with_seed(11)
            .run(&platform)
            .unwrap();
        assert_eq!(run.rounds.len(), 1);
        assert!(!run.is_partial());
        assert_eq!(run.warm_instances(), 0);
        let plain = platform
            .run_burst(&BurstSpec::packed(work(), 400, 4).with_seed(11))
            .unwrap();
        assert_eq!(run.rounds[0], plain);
        assert!((run.expense_usd() - plain.expense.total_usd()).abs() < 1e-12);
    }

    #[test]
    fn cold_pool_is_bit_identical_to_no_pool() {
        let platform = aws();
        let req = BurstRequest::new(work(), 300, 4).with_seed(9);
        let bare = req.run(&platform).unwrap();
        let mut pool = WarmPool::new(WarmPoolConfig::cold());
        let pooled = req.run_pooled(&platform, &mut pool, 0.0).unwrap();
        assert_eq!(bare, pooled);
        assert_eq!(
            bare.rounds[0].canonical_text(),
            pooled.rounds[0].canonical_text()
        );
    }

    #[test]
    fn warm_pool_grants_cut_latency_and_earn_credit() {
        let platform = aws();
        let req = BurstRequest::new(work(), 200, 4).with_seed(5);
        let cold = req.run(&platform).unwrap();

        let mut pool = fixed_pool(600.0);
        pool.check_in("w", 50, 0.0);
        let warm = req.run_pooled(&platform, &mut pool, 10.0).unwrap();
        assert_eq!(warm.warm_grants, 50);
        assert_eq!(warm.shared_grants, 0);
        assert!(warm.warm_credit_usd > 0.0, "warm reuse must earn credit");
        assert!(warm.expense_usd() < cold.expense_usd());
        assert!(
            warm.total_service_secs() <= cold.total_service_secs(),
            "warm starts cannot slow the burst"
        );
        let warm_count = warm.rounds[0].instances.iter().filter(|r| r.warm).count();
        assert_eq!(warm_count, 50);
        for rec in warm.rounds[0].instances.iter().take(50) {
            // Warm instances skip build/ship: only scheduling + the granted
            // warm latency separate placement from execution start.
            assert!((rec.started_at - rec.scheduled_at - WARM_START_SECS).abs() < 1e-9);
        }
    }

    #[test]
    fn survivors_are_checked_back_in() {
        let platform = aws();
        let mut pool = fixed_pool(1e9);
        let req = BurstRequest::new(work(), 100, 4).with_seed(3);
        let run = req.run_pooled(&platform, &mut pool, 0.0).unwrap();
        assert_eq!(pool.len(), run.rounds[0].instances.len());
        // The next burst of the same function starts fully warm.
        let again = req.run_pooled(&platform, &mut pool, 5_000.0).unwrap();
        assert_eq!(again.warm_grants, again.rounds[0].instances.len() as u64);
    }

    #[test]
    fn crashed_instances_are_evicted_from_the_pool() {
        // Certain crash + no retries: every instance fails, so nothing may
        // be returned to the pool — a crash destroys the container.
        let platform = aws();
        let mut pool = fixed_pool(1e9);
        let run = BurstRequest::new(work(), 60, 4)
            .with_seed(3)
            .with_faults(FaultSpec::none().with_crash_rate(1.0))
            .with_retry(RetryPolicy::no_retries())
            .run_pooled(&platform, &mut pool, 0.0)
            .unwrap();
        assert!(run.is_partial());
        assert_eq!(run.abandoned_functions, 60);
        assert!(
            pool.is_empty(),
            "crashed instances must not re-enter the pool"
        );
    }

    #[test]
    fn follow_up_rounds_start_cold() {
        let platform = aws();
        let retry = RetryPolicy {
            max_rounds: 3,
            ..RetryPolicy::no_retries()
        };
        let mut pool = fixed_pool(1e9);
        pool.check_in("w", 500, 0.0);
        let run = BurstRequest::new(work(), 600, 4)
            .with_seed(7)
            .with_faults(FaultSpec::none().with_crash_rate(0.3))
            .with_retry(retry)
            .run_pooled(&platform, &mut pool, 1.0)
            .unwrap();
        assert!(run.rounds.len() > 1, "failures must trigger a follow-up");
        for later in &run.rounds[1..] {
            assert!(
                later.instances.iter().all(|r| !r.warm),
                "follow-up rounds re-drive failed work cold"
            );
        }
    }

    #[test]
    fn split_phase_granted_run_is_bit_identical_to_run_pooled() {
        // The fleet engine's serial acquire → parallel run → serial check-in
        // protocol must reproduce the inline pooled path exactly: same run,
        // same pool end state, under faults and retries.
        let platform = aws();
        let req = BurstRequest::new(work(), 200, 4)
            .with_seed(7)
            .with_faults(FaultSpec::none().with_crash_rate(0.1))
            .with_retry(RetryPolicy {
                max_rounds: 2,
                ..RetryPolicy::no_retries()
            });

        let mut inline_pool = fixed_pool(300.0);
        inline_pool.check_in("w", 40, 0.0);
        let inline = req.run_pooled(&platform, &mut inline_pool, 10.0).unwrap();

        let mut split_pool = fixed_pool(300.0);
        split_pool.check_in("w", 40, 0.0);
        let grant = split_pool.acquire_counted("w", req.round0_instances(), 10.0);
        let granted = req.run_granted(&platform, &grant, 10.0).unwrap();
        for &t in &granted.check_ins {
            split_pool.check_in("w", 1, t);
        }

        assert_eq!(inline, granted.run);
        assert_eq!(inline_pool.stats(), split_pool.stats());
        assert_eq!(inline_pool.len(), split_pool.len());
        assert_eq!(
            inline.rounds[0].canonical_text(),
            granted.run.rounds[0].canonical_text()
        );
    }

    #[test]
    fn round0_instances_matches_the_submitted_spec() {
        assert_eq!(BurstRequest::new(work(), 100, 4).round0_instances(), 25);
        assert_eq!(BurstRequest::new(work(), 3, 4).round0_instances(), 1);
        assert_eq!(BurstRequest::new(work(), 0, 4).round0_instances(), 0);
        assert_eq!(BurstRequest::new(work(), 101, 4).round0_instances(), 26);
    }

    #[test]
    fn pooled_requests_replay_bit_identically() {
        let platform = aws();
        let build = || {
            let mut pool = fixed_pool(300.0);
            pool.check_in("w", 40, 0.0);
            BurstRequest::new(work(), 200, 4)
                .with_seed(7)
                .with_faults(FaultSpec::none().with_crash_rate(0.1))
                .with_retry(RetryPolicy {
                    max_rounds: 2,
                    ..RetryPolicy::no_retries()
                })
                .run_pooled(&platform, &mut pool, 10.0)
                .map(|run| (run, pool.stats()))
                .unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
    }
}
