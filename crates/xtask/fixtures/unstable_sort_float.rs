//! simlint fixture: unstable sorts keyed on floats (2 violations). Equal
//! keys reorder unpredictably under `sort_unstable_*`, so float-keyed
//! orderings in simulation crates must use the stable form.

pub fn order(xs: &mut Vec<(f64, u32)>, ids: &mut Vec<u32>, ws: &mut Vec<f32>) {
    // Float comparator through an unstable sort: flagged.
    xs.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    // Float arithmetic in the key extractor: flagged.
    ws.sort_unstable_by_key(|w| (w * 100.0) as i64);
    // Integer keys need no tie-break order: clean.
    ids.sort_unstable();
    // The stable sort is the endorsed form: clean.
    xs.sort_by(|a, b| a.0.total_cmp(&b.0));
    // simlint: allow(unstable-sort-float): "fixture: keys are unique by construction"
    xs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
}

#[cfg(test)]
mod tests {
    pub fn assertion_order(xs: &mut Vec<f64>) {
        // Test code may sort however it likes.
        xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    }
}
