//! Sweep reports: a deterministic render plus host-timing capture for
//! `BENCH_sweep.json`.
//!
//! The split matters: [`SweepReport::render`] contains only simulation
//! results (sorted by cell key, fixed precision) and is required to be
//! byte-identical across `--threads` values; wall-clock timing, cache
//! hit/miss counters, and speedups are *measurements of the host*, so they
//! live in stderr summaries and in [`bench_json`] only.

use crate::cell::CellResult;

/// The merged outcome of one sweep run.
#[derive(Debug)]
pub struct SweepReport {
    /// Spec name.
    pub name: String,
    /// Worker threads actually used (after clamping to the cell count).
    pub threads: usize,
    /// Per-cell results, sorted by [`crate::CellKey`].
    pub cells: Vec<CellResult>,
    /// Distinct fitted models in the cache after the run.
    pub fitted_models: usize,
    /// Cache-lifetime hit counter (host-dependent under races; not rendered).
    pub fit_hits: u64,
    /// Cache-lifetime miss counter (host-dependent under races; not rendered).
    pub fit_misses: u64,
    /// Host wall time for the whole run, seconds (timing only).
    pub wall_secs: f64,
}

impl SweepReport {
    /// Cells that completed.
    pub fn ok_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_ok()).count()
    }

    /// Cells the platform rejected.
    pub fn error_count(&self) -> usize {
        self.cells.len() - self.ok_count()
    }

    /// The deterministic text report: identical for every thread count.
    ///
    /// Contains no wall-clock timing and no cache hit/miss counts — the
    /// hit/miss split can legitimately differ between runs when two workers
    /// race on the same cold fit.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sweep {}: {} cells, {} fitted models, {} ok, {} failed\n",
            self.name,
            self.cells.len(),
            self.fitted_models,
            self.ok_count(),
            self.error_count(),
        ));
        out.push_str(
            "platform\tworkload\tpolicy\tC\tseed\tfaults\tctl\tP\tinstances\tservice_s\tscaling_s\texpense_usd\tfn_hours\tretries\tfailed\n",
        );
        for cell in &self.cells {
            out.push_str(&cell.render_line());
            out.push('\n');
        }
        out
    }

    /// One-line host-timing summary for stderr (never part of `render`).
    pub fn timing_line(&self) -> String {
        format!(
            "timing: {} cells on {} thread(s) in {:.3}s ({:.1} cells/s), fit cache {} hit / {} miss",
            self.cells.len(),
            self.threads,
            self.wall_secs,
            self.cells.len() as f64 / self.wall_secs.max(1e-9),
            self.fit_hits,
            self.fit_misses,
        )
    }
}

/// Host timing of one run of a sweep, for the serial-vs-parallel benchmark.
#[derive(Debug, Clone, Copy)]
pub struct RunTiming {
    /// Worker threads used.
    pub threads: usize,
    /// Host wall time, seconds.
    pub wall_secs: f64,
}

/// Compose `BENCH_sweep.json` from a sweep plus the timings of one or more
/// runs of it (e.g. `--threads 1` and `--threads 8` over the same spec).
///
/// `outputs_identical` reports whether every run rendered byte-identically
/// (pass `None` when only one run was made). The JSON is hand-rolled: the
/// sweep crate takes no serde dependency, and the document is flat.
pub fn bench_json(
    report: &SweepReport,
    runs: &[RunTiming],
    outputs_identical: Option<bool>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"sweep\",\n");
    out.push_str(&format!(
        "  \"sweep\": \"{}\",\n",
        escape_json(&report.name)
    ));
    out.push_str(&format!("  \"cells\": {},\n", report.cells.len()));
    out.push_str(&format!("  \"ok\": {},\n", report.ok_count()));
    out.push_str(&format!("  \"failed\": {},\n", report.error_count()));
    out.push_str(&format!("  \"fitted_models\": {},\n", report.fitted_models));
    out.push_str(&format!("  \"fit_hits\": {},\n", report.fit_hits));
    out.push_str(&format!("  \"fit_misses\": {},\n", report.fit_misses));

    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"threads\": {}, \"wall_secs\": {}, \"cells_per_sec\": {}}}{}\n",
            run.threads,
            json_f64(run.wall_secs),
            json_f64(report.cells.len() as f64 / run.wall_secs.max(1e-9)),
            comma,
        ));
    }
    out.push_str("  ],\n");

    match speedup(runs) {
        Some(s) => out.push_str(&format!(
            "  \"speedup_parallel_vs_serial\": {},\n",
            json_f64(s)
        )),
        None => out.push_str("  \"speedup_parallel_vs_serial\": null,\n"),
    }
    match outputs_identical {
        Some(b) => out.push_str(&format!("  \"outputs_identical\": {b},\n")),
        None => out.push_str("  \"outputs_identical\": null,\n"),
    }

    out.push_str("  \"cell_wall_ms\": [\n");
    for (i, cell) in report.cells.iter().enumerate() {
        let comma = if i + 1 < report.cells.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"cell\": \"{}\", \"wall_ms\": {}, \"fit_ms\": {}, \"run_ms\": {}}}{}\n",
            escape_json(&cell.key.compact()),
            json_f64(cell.wall_ms),
            json_f64(cell.fit_ms),
            json_f64(cell.run_ms),
            comma,
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Serial wall time over the best parallel wall time, if both were run.
pub fn speedup(runs: &[RunTiming]) -> Option<f64> {
    let serial = runs.iter().find(|r| r.threads == 1)?.wall_secs;
    let parallel = runs
        .iter()
        .filter(|r| r.threads > 1)
        .map(|r| r.wall_secs)
        .min_by(f64::total_cmp)?;
    Some(serial / parallel.max(1e-9))
}

/// JSON-legal float rendering (JSON has no NaN/Infinity literals).
pub(crate) fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Escape a string for embedding in a JSON document.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKey;

    fn result(policy: &str, seed: u64) -> CellResult {
        CellResult {
            key: CellKey {
                platform: "aws".into(),
                workload: "w".into(),
                policy: policy.into(),
                concurrency: 100,
                seed,
                faults: "none".into(),
                controller: "off".into(),
                keepalive: "cold".into(),
                workflow: String::new(),
            },
            packing_degree: 4,
            instances: 25,
            service_secs: 12.5,
            scaling_secs: 3.25,
            expense_usd: 0.125,
            function_hours: 0.5,
            retries: 0,
            failed_functions: 0,
            error: None,
            wall_ms: 1.5,
            fit_ms: 1.0,
            run_ms: 0.5,
        }
    }

    fn report() -> SweepReport {
        SweepReport {
            name: "unit".into(),
            threads: 2,
            cells: vec![result("fixed-4", 1), result("no-packing", 2)],
            fitted_models: 1,
            fit_hits: 3,
            fit_misses: 1,
            wall_secs: 0.25,
        }
    }

    #[test]
    fn render_excludes_host_timing_and_cache_counters() {
        let mut a = report();
        let mut b = report();
        b.wall_secs = 99.0;
        b.threads = 8;
        b.fit_hits = 0;
        b.fit_misses = 4;
        for cell in &mut b.cells {
            cell.wall_ms = 1e6;
        }
        assert_eq!(a.render(), b.render());
        a.cells[0].expense_usd += 1.0;
        assert_ne!(a.render(), b.render());
    }

    #[test]
    fn bench_json_is_wellformed_enough() {
        let r = report();
        let runs = [
            RunTiming {
                threads: 1,
                wall_secs: 1.0,
            },
            RunTiming {
                threads: 8,
                wall_secs: 0.25,
            },
        ];
        let json = bench_json(&r, &runs, Some(true));
        assert!(json.contains("\"bench\": \"sweep\""));
        assert!(json.contains("\"speedup_parallel_vs_serial\": 4"));
        assert!(json.contains("\"outputs_identical\": true"));
        assert!(json.contains("aws/w/fixed-4/c100/s1/fnone/roff"));
        // Braces and brackets balance.
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn speedup_needs_both_serial_and_parallel() {
        assert!(speedup(&[RunTiming {
            threads: 1,
            wall_secs: 1.0
        }])
        .is_none());
        let s = speedup(&[
            RunTiming {
                threads: 1,
                wall_secs: 2.0,
            },
            RunTiming {
                threads: 4,
                wall_secs: 0.5,
            },
        ]);
        assert_eq!(s, Some(4.0));
    }
}
