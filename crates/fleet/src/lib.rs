//! Multi-tenant fleet replay: an Azure-scale day on one shared datacenter.
//!
//! The single-trace [`propack_replay::ReplayEngine`] answers "how should
//! *one* app's packing degree track its load?". Production FaaS platforms
//! run thousands of apps against **one** fleet and **one** warm pool — the
//! regime the Azure Functions trace (Shahrad et al., ATC '20) describes and
//! the ProPack paper's motivation assumes. This crate replays that regime:
//!
//! * [`TenantSpec`] — one tenant: an arrival trace, a workload profile
//!   (shared `Arc` across tenants with the same function profile), a
//!   [`propack_replay::Controller`], and a private RNG seed.
//! * [`synthetic_fleet`] — a deterministic Azure-style fleet generator:
//!   per-app function counts (`M_func`), profile assignment, and
//!   heavy-tailed per-function rates are sampled on the
//!   `fleet-gen`/`fleet-tenant` RNG lanes, normalized so the expected
//!   invocation total over the horizon hits a target (e.g. a 1M-invocation
//!   day).
//! * [`FleetEngine`] — the sharded executor. Each epoch runs four phases:
//!   serial per-tenant planning (forecast → plan → observe, exactly the
//!   [`propack_replay::ReplayEngine`] sequence), serial tenant-id-ordered
//!   admission against the shared [`propack_platform::fleet::Fleet`] and
//!   [`propack_platform::WarmPool`], a **parallel** burst phase over the
//!   admitted tenants (work-stealing deques, the sweep engine's idiom), and
//!   a serial tenant-id-ordered reduce that commits pool check-ins and
//!   frees fleet slots. Only the parallel phase touches the platform, and
//!   it is pure (no shared mutable state), so reports are byte-identical
//!   for any `--threads N` and any tenant input order.
//! * [`FleetReport`] — per-tenant accounting (service, expense, QoS
//!   violations, chosen `P`) plus fleet-level utilization, cold-start rate,
//!   and contention, with a deterministic [`FleetReport::render`].
//!
//! Determinism contract: a single-tenant fleet with ample capacity
//! reproduces the single-trace [`propack_replay::ReplayEngine`] replay
//! **bit-identically** (same per-epoch rows), pinned by the
//! `fleet_determinism` integration suite.

pub mod engine;
pub mod report;
pub mod tenant;

pub use engine::{FleetEngine, FleetError, FleetSpec};
pub use report::{FleetEpochRow, FleetReport, TenantRow};
pub use tenant::{synthetic_fleet, SyntheticFleetConfig, TenantSpec};
