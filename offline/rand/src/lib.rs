//! Offline stub for `rand` 0.9: the subset of the API this workspace uses,
//! bit-exact where outputs feed simulated results.
//!
//! Exactness-critical pieces (verified against the committed golden replay
//! fixtures, which were generated with the real crates):
//!
//! * [`SeedableRng::seed_from_u64`] — rand_core's PCG-based seed expansion.
//! * `Rng::random::<f64>()` — the 53-bit multiply method
//!   (`(next_u64() >> 11) * 2^-53`).
//! * `Rng::random::<u64>()` / `u32` — direct `next_u64`/`next_u32`.

/// Core RNG interface (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable RNG constructors (stand-in for `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// rand_core's default `seed_from_u64`: a PCG32 sequence expands the
    /// `u64` into the full seed, 4 little-endian bytes per step. Constants
    /// and output function match rand_core 0.9 exactly.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the standard (uniform) distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.9: sign bit of a u32 draw.
        (rng.next_u32() >> 31) == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.9 `StandardUniform` for f64: 53 random bits, multiply.
        let scale = 1.0 / ((1u64 << 53) as f64);
        scale * ((rng.next_u64() >> 11) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u32 << 24) as f32);
        scale * ((rng.next_u32() >> 8) as f32)
    }
}

/// User-facing sampling methods (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_iter<T: Standard>(self) -> RandomIter<Self, T>
    where
        Self: Sized,
    {
        RandomIter {
            rng: self,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Iterator over standard-distribution draws, consuming the RNG.
pub struct RandomIter<R, T> {
    rng: R,
    _marker: core::marker::PhantomData<T>,
}

impl<R: RngCore, T: Standard> Iterator for RandomIter<R, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        Some(T::sample(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 += 1;
            self.0 as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = Counter(0);
        for _ in 0..100 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
