//! Statistics substrate for the ProPack reproduction.
//!
//! ProPack (HPDC '23, §2) is driven by three pieces of statistical machinery,
//! all of which are implemented here from scratch:
//!
//! * **Least-squares fitting** — the scaling-time model (Eq. 2) is a
//!   second-order polynomial fitted by [`regression::polyfit`], and the
//!   interference model (Eq. 1) is an exponential fitted by
//!   [`models::ModelKind::Exponential`] (log-linear least squares).
//! * **Model selection** — the paper reports trying *"linear, quadratic,
//!   cubic, exponential, logarithmic, logistic, normal, and sinusoidal"*
//!   models before settling on exponential (execution time) and polynomial
//!   (scaling time). The full zoo lives in [`models`] and
//!   [`models::select_best`] reproduces that selection.
//! * **Pearson χ² goodness-of-fit** — §2.4 validates the analytical models
//!   with a χ² test at 14 degrees of freedom and p = 0.995 (critical value
//!   4.075). [`chi2`] implements the statistic, the χ² CDF (via the
//!   regularized incomplete gamma function in [`special`]) and the inverse
//!   CDF used to derive critical values.
//!
//! The crate has no dependencies; everything (linear algebra, special
//! functions, quantiles) is implemented locally so that the rest of the
//! workspace can treat it as a leaf substrate.

pub mod chi2;
pub mod linalg;
pub mod models;
pub mod percentile;
pub mod regression;
pub mod special;
pub mod summary;

pub use chi2::{chi2_critical_value, chi2_statistic, ChiSquareTest, GofOutcome};
pub use models::{select_best, CurveFit, ModelKind};
pub use percentile::{median, percentile, Percentile};
pub use regression::{polyfit, PolyFit};
pub use summary::Summary;

/// Errors produced by fitting and testing routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// Not enough samples for the requested operation (e.g. fitting a
    /// degree-2 polynomial through fewer than 3 points).
    TooFewSamples { needed: usize, got: usize },
    /// Mismatched input lengths (xs vs. ys).
    LengthMismatch { xs: usize, ys: usize },
    /// The design matrix was singular (e.g. all x values identical).
    Singular,
    /// The model requires strictly positive observations (log-linear fits).
    NonPositiveObservation { index: usize, value: f64 },
    /// An input was not finite.
    NonFinite { index: usize, value: f64 },
    /// A domain error in a special function (e.g. gamma of a non-positive).
    Domain(&'static str),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::TooFewSamples { needed, got } => {
                write!(f, "too few samples: needed {needed}, got {got}")
            }
            StatsError::LengthMismatch { xs, ys } => {
                write!(f, "input length mismatch: {xs} xs vs {ys} ys")
            }
            StatsError::Singular => write!(f, "singular design matrix"),
            StatsError::NonPositiveObservation { index, value } => {
                write!(
                    f,
                    "observation {index} = {value} must be positive for a log-linear fit"
                )
            }
            StatsError::NonFinite { index, value } => {
                write!(f, "input {index} = {value} is not finite")
            }
            StatsError::Domain(what) => write!(f, "domain error: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StatsError>;

pub(crate) fn check_xy(xs: &[f64], ys: &[f64]) -> Result<()> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            xs: xs.len(),
            ys: ys.len(),
        });
    }
    for (i, v) in xs.iter().enumerate() {
        if !v.is_finite() {
            return Err(StatsError::NonFinite {
                index: i,
                value: *v,
            });
        }
    }
    for (i, v) in ys.iter().enumerate() {
        if !v.is_finite() {
            return Err(StatsError::NonFinite {
                index: i,
                value: *v,
            });
        }
    }
    Ok(())
}
