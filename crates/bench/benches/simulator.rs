//! Criterion benches for the platform simulator: burst throughput across
//! concurrency levels and platforms, plus the scheduler-curve ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use propack_funcx::FuncXPlatform;
use propack_platform::profile::PlatformProfile;
use propack_platform::PlatformBuilder;
use propack_platform::{BurstSpec, CloudPlatform, ServerlessPlatform, WorkProfile};
use std::hint::black_box;

fn work() -> WorkProfile {
    WorkProfile::synthetic("bench", 0.25, 100.0).with_contention(0.2)
}

fn bench_burst_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("burst_simulation");
    let aws = PlatformBuilder::aws().build();
    for &n in &[500u32, 2000, 5000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("aws_no_packing", n), &n, |b, &n| {
            let spec = BurstSpec::new(work(), n, 1).with_seed(1);
            b.iter(|| aws.run_burst(black_box(&spec)).unwrap())
        });
    }
    let spec = BurstSpec::packed(work(), 5000, 10).with_seed(1);
    g.bench_function("aws_packed_c5000_p10", |b| {
        b.iter(|| aws.run_burst(black_box(&spec)).unwrap())
    });
    g.finish();
}

fn bench_platform_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("platforms");
    let spec = BurstSpec::new(work(), 2000, 1).with_seed(2);
    let platforms: Vec<(&str, Box<dyn ServerlessPlatform>)> = vec![
        ("aws", Box::new(PlatformBuilder::aws().build())),
        ("google", Box::new(PlatformBuilder::google().build())),
        ("azure", Box::new(PlatformBuilder::azure().build())),
        ("funcx", Box::new(FuncXPlatform::default())),
    ];
    for (name, p) in &platforms {
        g.bench_function(BenchmarkId::new("burst_c2000", *name), |b| {
            b.iter(|| p.run_burst(black_box(&spec)).unwrap())
        });
    }
    g.finish();
}

/// Ablation: how much of the simulation cost is the scheduler's occupancy
/// scan — compare a profile with the quadratic term zeroed.
fn bench_scheduler_curve_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scheduler_curve");
    let spec = BurstSpec::new(work(), 3000, 1).with_seed(3);
    let quad = PlatformBuilder::aws().build();
    let mut flat_profile = PlatformProfile::aws_lambda();
    flat_profile.control.sched_per_inflight_secs = 0.0;
    let flat = CloudPlatform::new(flat_profile);
    g.bench_function("quadratic_scheduler", |b| {
        b.iter(|| quad.run_burst(black_box(&spec)).unwrap())
    });
    g.bench_function("flat_scheduler", |b| {
        b.iter(|| flat.run_burst(black_box(&spec)).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_burst_throughput,
    bench_platform_comparison,
    bench_scheduler_curve_ablation
);
criterion_main!(benches);
