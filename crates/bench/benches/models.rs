//! Criterion benches for ProPack's analytical machinery: model fitting,
//! planning, and the ablations DESIGN.md calls out (model-zoo choice,
//! alternate-point sampling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use propack_model::interference::{InterferenceModel, InterferenceSample};
use propack_model::model::{CostFactors, PackingModel};
use propack_model::optimizer::{plan, Objective};
use propack_model::scaling::{ScalingModel, ScalingSample};
use propack_platform::profile::PlatformProfile;
use propack_platform::WorkProfile;
use propack_stats::models::{fit, select_best, ModelKind};
use propack_stats::percentile::Percentile;
use propack_stats::polyfit;
use std::hint::black_box;

fn interference_samples(n: usize) -> Vec<InterferenceSample> {
    (1..=n as u32)
        .map(|p| InterferenceSample {
            packing_degree: p,
            exec_secs: 100.0 * (0.05 * p as f64).exp(),
        })
        .collect()
}

fn bench_fitting(c: &mut Criterion) {
    let mut g = c.benchmark_group("fitting");
    let samples = interference_samples(20);
    g.bench_function("eq1_exponential_fit", |b| {
        b.iter(|| InterferenceModel::fit(black_box(&samples), 0.25).unwrap())
    });

    let scaling: Vec<ScalingSample> = (1..=10)
        .map(|i| ScalingSample {
            concurrency: i * 500,
            scaling_secs: 2.25e-5 * (i * 500) as f64 * (i * 500) as f64 + 0.2 * (i * 500) as f64,
        })
        .collect();
    g.bench_function("eq2_polynomial_fit", |b| {
        b.iter(|| ScalingModel::fit(black_box(&scaling)).unwrap())
    });

    let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 1e-4 * x * x + 0.3 * x + 5.0).collect();
    g.bench_function("polyfit_deg2_200pts", |b| {
        b.iter(|| polyfit(black_box(&xs), black_box(&ys), 2).unwrap())
    });
    g.finish();
}

/// Ablation: the paper's model selection — fitting all eight candidate
/// forms vs only the exponential winner.
fn bench_model_zoo_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_model_zoo");
    let samples = interference_samples(20);
    let xs: Vec<f64> = samples.iter().map(|s| s.packing_degree as f64).collect();
    let ys: Vec<f64> = samples.iter().map(|s| s.exec_secs).collect();
    g.bench_function("exponential_only", |b| {
        b.iter(|| fit(ModelKind::Exponential, black_box(&xs), black_box(&ys)).unwrap())
    });
    g.bench_function("all_eight_candidates", |b| {
        b.iter(|| select_best(black_box(&xs), black_box(&ys)).unwrap())
    });
    g.finish();
}

/// Ablation: alternate-point sampling (§2.1) vs profiling every degree —
/// same fit quality with half the probe bursts; here we measure the fit
/// cost, the repro binaries measure the accuracy.
fn bench_sampling_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sampling");
    for (label, step) in [("every_degree", 1usize), ("alternate_degrees", 2)] {
        let samples: Vec<InterferenceSample> =
            interference_samples(40).into_iter().step_by(step).collect();
        g.bench_with_input(BenchmarkId::new("fit", label), &samples, |b, s| {
            b.iter(|| InterferenceModel::fit(black_box(s), 0.25).unwrap())
        });
    }
    g.finish();
}

fn paper_model() -> PackingModel {
    PackingModel {
        interference: InterferenceModel {
            base: 100.0 / (0.05f64).exp(),
            rate: 0.05,
            mem_gb: 0.25,
            rmse: 0.0,
        },
        scaling: ScalingModel {
            beta1: 2.25e-5,
            beta2: 0.2,
            beta3: 2.0,
            r_squared: 1.0,
        },
        cost: CostFactors::derive(
            &PlatformProfile::aws_lambda().prices,
            &WorkProfile::synthetic("w", 0.25, 100.0),
            10.0,
        ),
        p_max: 40,
    }
}

fn bench_planning(c: &mut Criterion) {
    let mut g = c.benchmark_group("planning");
    let model = paper_model();
    for &conc in &[1000u32, 5000] {
        g.bench_with_input(BenchmarkId::new("joint_plan", conc), &conc, |b, &cc| {
            b.iter(|| {
                plan(
                    black_box(&model),
                    cc,
                    Objective::default(),
                    Percentile::Total,
                )
            })
        });
    }
    g.bench_function("sweep_40_degrees", |b| {
        b.iter(|| black_box(&model).sweep(5000, Percentile::Total))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fitting,
    bench_model_zoo_ablation,
    bench_sampling_ablation,
    bench_planning
);
criterion_main!(benches);
