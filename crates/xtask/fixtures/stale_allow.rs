//! simlint fixture: a stale `allow` directive (1 violation). The first
//! directive suppresses a real finding and stays clean; the second excuses
//! code that no longer triggers its rule — under v1 it rotted silently,
//! the AST pass flags it.

pub fn effective(x: f64) -> bool {
    // simlint: allow(float-eq): "exact zero is the caller's sentinel"
    x == 0.0
}

pub fn stale(x: f64) -> bool {
    // simlint: allow(float-eq): "this comparison was rewritten long ago"
    x < 1.0
}
