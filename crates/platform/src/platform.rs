//! The [`ServerlessPlatform`] trait and the cloud implementation.
//!
//! [`CloudPlatform::run_burst`] drives each function instance through the
//! full control-plane pipeline as discrete events on `propack-simcore`:
//!
//! ```text
//! invoke ──► schedule (central scheduler, search cost grows with occupancy)
//!        ──► build    (image server, finite build bandwidth)
//!        ──► ship     (fabric, finite link bandwidth)
//!        ──► provision (microVM boot, parallel across servers)
//!        ──► execute  (packing interference, then billing stops)
//! ```
//!
//! Warm instances (Pywren-style reuse) skip build/ship/provision.

use crate::billing::{bill_burst, Expense};
use crate::burst::BurstSpec;
use crate::error::PlatformError;
use crate::fleet::Fleet;
use crate::instance::{packed_exec_secs, sampled_exec_secs};
use crate::profile::{PlatformProfile, PriceSheet};
use crate::report::{InstanceRecord, RunReport, ScalingBreakdown};
use propack_simcore::rng::jitter;
use propack_simcore::{BandwidthPipe, FifoResource, RngStreams, Sim, SimTime, Tracer};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Instance shape limits exposed to planners (ProPack reads these to bound
/// the packing degree).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceLimits {
    /// Maximum instance memory in GB (`M_platform`).
    pub mem_gb: f64,
    /// vCPU cores per instance.
    pub cores: u32,
    /// Maximum execution seconds per instance.
    pub max_exec_secs: f64,
}

/// Anything that can execute a concurrent burst of function instances.
///
/// Implemented by [`CloudPlatform`] (AWS/Google/Azure presets) and by
/// `propack-funcx`'s on-prem cluster. ProPack, the baselines, and the Oracle
/// are all generic over this trait, which is the repo's equivalent of "runs
/// on multiple serverless platforms".
pub trait ServerlessPlatform {
    /// Display name for figure output.
    fn name(&self) -> String;

    /// Instance shape limits.
    fn limits(&self) -> InstanceLimits;

    /// The platform's price sheet.
    fn prices(&self) -> PriceSheet;

    /// Execute a burst and report timestamps and billing.
    fn run_burst(&self, spec: &BurstSpec) -> Result<RunReport, PlatformError>;

    /// Deterministic (noise-free) execution time of one instance at the
    /// given packing degree — what a careful profiling run converges to.
    fn nominal_exec_secs(&self, work: &crate::WorkProfile, packing_degree: u32) -> f64;
}

/// A commercial-cloud serverless platform driven by a calibration profile.
#[derive(Debug, Clone)]
pub struct CloudPlatform {
    profile: PlatformProfile,
    tracing: bool,
}

impl CloudPlatform {
    /// Build a platform from a calibration profile. Prefer
    /// [`crate::builder::PlatformBuilder`] when starting from a preset.
    pub fn new(profile: PlatformProfile) -> Self {
        CloudPlatform {
            profile,
            tracing: false,
        }
    }

    /// Set whether [`Self::run_burst_observed`] traces by default.
    pub fn with_tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Whether this platform traces lifecycle events by default.
    pub fn tracing_enabled(&self) -> bool {
        self.tracing
    }

    /// A tracer matching this platform's configured default.
    pub fn tracer(&self) -> Tracer {
        if self.tracing {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        }
    }

    /// The underlying calibration.
    pub fn profile(&self) -> &PlatformProfile {
        &self.profile
    }
}

/// DES state for one burst.
struct BurstState {
    profile: PlatformProfile,
    tracer: Tracer,
    fleet: Fleet,
    placements: Vec<u32>,
    peak_occupancy: u32,
    work: Arc<crate::WorkProfile>,
    packing_degree: u32,
    scheduler: FifoResource,
    builder: BandwidthPipe,
    shipper: BandwidthPipe,
    admitted: u64,
    /// Instances the fleet could not place. Admission control sizes bursts
    /// against fleet capacity, so this stays 0; if it ever doesn't, the run
    /// returns `FleetSaturated` instead of panicking mid-simulation.
    place_failures: u32,
    records: Vec<InstanceRecord>,
    ctrl_rng: ChaCha8Rng,
    streams: RngStreams,
}

fn pending_record(index: u32) -> InstanceRecord {
    InstanceRecord {
        index,
        scheduled_at: 0.0,
        built_at: 0.0,
        shipped_at: 0.0,
        started_at: 0.0,
        finished_at: 0.0,
        warm: false,
    }
}

impl ServerlessPlatform for CloudPlatform {
    fn name(&self) -> String {
        self.profile.provider.name().to_string()
    }

    fn limits(&self) -> InstanceLimits {
        InstanceLimits {
            mem_gb: self.profile.instance.mem_gb,
            cores: self.profile.instance.cores,
            max_exec_secs: self.profile.instance.max_exec_secs,
        }
    }

    fn prices(&self) -> PriceSheet {
        self.profile.prices
    }

    fn nominal_exec_secs(&self, work: &crate::WorkProfile, packing_degree: u32) -> f64 {
        packed_exec_secs(&self.profile.instance, work, packing_degree)
    }

    fn run_burst(&self, spec: &BurstSpec) -> Result<RunReport, PlatformError> {
        self.run_burst_with_tracer(spec, Tracer::disabled())
            .map(|(r, _)| r)
    }
}

impl CloudPlatform {
    /// Run a burst and capture a full lifecycle trace (one [`Tracer`]
    /// event per stage transition of every instance). `run_burst` is this
    /// with tracing disabled.
    pub fn run_burst_traced(&self, spec: &BurstSpec) -> Result<(RunReport, Tracer), PlatformError> {
        self.run_burst_with_tracer(spec, Tracer::enabled())
    }

    /// Run a burst under the platform's *configured* tracing default (see
    /// [`crate::builder::PlatformBuilder::tracing`]): the returned tracer is
    /// populated when tracing is on and empty (zero-allocation) when off.
    /// The report is identical either way — tracing is observation-only.
    pub fn run_burst_observed(
        &self,
        spec: &BurstSpec,
    ) -> Result<(RunReport, Tracer), PlatformError> {
        self.run_burst_with_tracer(spec, self.tracer())
    }

    fn run_burst_with_tracer(
        &self,
        spec: &BurstSpec,
        tracer: Tracer,
    ) -> Result<(RunReport, Tracer), PlatformError> {
        validate(&self.profile, spec)?;

        let n = spec.instances;
        let streams = RngStreams::new(spec.seed);
        let state = BurstState {
            profile: self.profile,
            tracer,
            fleet: Fleet::new(
                self.profile.control.fleet_servers,
                self.profile.control.fleet_slots,
            ),
            placements: vec![0; n as usize],
            peak_occupancy: 0,
            work: Arc::new(spec.workload.clone()),
            packing_degree: spec.packing_degree,
            scheduler: FifoResource::new(),
            builder: BandwidthPipe::new(self.profile.control.build_bytes_per_sec),
            shipper: BandwidthPipe::new(self.profile.control.ship_bytes_per_sec),
            admitted: 0,
            place_failures: 0,
            records: (0..n).map(pending_record).collect(),
            ctrl_rng: streams.stream("control-plane"),
            streams,
        };

        let mut sim = Sim::new(state);
        // All invocations arrive at t = 0 (Step-Functions-style fan-out).
        let warm_count = (spec.warm_fraction * n as f64).floor() as u32;
        for i in 0..n {
            let warm = i < warm_count;
            sim.schedule_at(SimTime::ZERO, move |sim| schedule_placement(sim, i, warm));
        }
        sim.run();

        let state = sim.into_state();
        if state.place_failures > 0 {
            let capacity =
                self.profile.control.fleet_servers as u64 * self.profile.control.fleet_slots as u64;
            return Err(PlatformError::FleetSaturated {
                requested: n,
                capacity,
            });
        }
        let scaling = breakdown(&state);
        let exec_secs: Vec<f64> = state.records.iter().map(|r| r.exec_secs()).collect();
        let expense = compute_expense(&self.profile, spec, &exec_secs);

        Ok((
            RunReport {
                platform: self.name(),
                workload: spec.workload.name.clone(),
                instances_requested: n,
                packing_degree: spec.packing_degree,
                instances: state.records,
                scaling,
                expense,
            },
            state.tracer,
        ))
    }
}

fn validate(profile: &PlatformProfile, spec: &BurstSpec) -> Result<(), PlatformError> {
    if spec.instances == 0 || spec.packing_degree == 0 {
        return Err(PlatformError::EmptyBurst);
    }
    let capacity = profile.control.fleet_servers as u64 * profile.control.fleet_slots as u64;
    if spec.instances as u64 > capacity {
        return Err(PlatformError::FleetSaturated {
            requested: spec.instances,
            capacity,
        });
    }
    let needed = spec.packing_degree as f64 * spec.workload.mem_gb;
    if needed > profile.instance.mem_gb + 1e-9 {
        return Err(PlatformError::MemoryLimitExceeded {
            packing_degree: spec.packing_degree,
            mem_gb: spec.workload.mem_gb,
            limit_gb: profile.instance.mem_gb,
        });
    }
    let projected = packed_exec_secs(&profile.instance, &spec.workload, spec.packing_degree)
        * (1.0 + profile.instance.exec_jitter);
    if projected > profile.instance.max_exec_secs {
        return Err(PlatformError::ExecutionTimeout {
            projected_secs: projected,
            limit_secs: profile.instance.max_exec_secs,
        });
    }
    Ok(())
}

/// Stage 1: the central scheduler searches for a placement. Its service
/// time grows with the number of placements already admitted in this burst
/// (occupancy bookkeeping scan) — the quadratic mechanism of Eq. 2.
fn schedule_placement(sim: &mut Sim<BurstState>, i: u32, warm: bool) {
    let now = sim.now();
    let s = sim.state_mut();
    let ctrl = s.profile.control;
    let service = (ctrl.sched_base_secs + ctrl.sched_per_inflight_secs * s.admitted as f64)
        * jitter(&mut s.ctrl_rng, ctrl.jitter);
    s.admitted += 1;
    let (_, done) = s.scheduler.request(now, service);
    s.records[i as usize].warm = warm;
    sim.schedule_at(done, move |sim| {
        let now = sim.now();
        let at = now.as_secs();
        let s = sim.state_mut();
        // The placement the search decided on: a slot on the least-loaded
        // server (capacity was validated at admission, so `place` only
        // fails if that invariant broke — recorded and surfaced after the
        // run rather than aborting the simulation).
        let placement = match s.fleet.place() {
            Some(p) => p,
            None => {
                s.place_failures += 1;
                s.tracer.record(now, i as u64, "place-failed");
                return;
            }
        };
        s.placements[i as usize] = placement.server;
        s.peak_occupancy = s.peak_occupancy.max(s.fleet.peak_occupancy());
        s.records[i as usize].scheduled_at = at;
        s.tracer.record(now, i as u64, "scheduled");
        if warm {
            // Warm container: already built, shipped, and provisioned.
            let s = sim.state_mut();
            s.records[i as usize].built_at = at;
            s.records[i as usize].shipped_at = at;
            start_execution(sim, i, 0.05);
        } else {
            build_container(sim, i);
        }
    });
}

/// Stage 2: the image server forms the container (downloads + installs the
/// runtime and dependencies) at finite build bandwidth — linear in the
/// number of containers.
fn build_container(sim: &mut Sim<BurstState>, i: u32) {
    let now = sim.now();
    let s = sim.state_mut();
    let bytes = s.profile.control.image_bytes * jitter(&mut s.ctrl_rng, s.profile.control.jitter);
    let (_, done) = s.builder.transfer(now, bytes);
    sim.schedule_at(done, move |sim| {
        let now = sim.now();
        let s = sim.state_mut();
        s.records[i as usize].built_at = now.as_secs();
        s.tracer.record(now, i as u64, "built");
        ship_container(sim, i);
    });
}

/// Stage 3: the formed container ships across the fabric to the server the
/// scheduler chose — again bandwidth-bound and linear in count.
fn ship_container(sim: &mut Sim<BurstState>, i: u32) {
    let now = sim.now();
    let s = sim.state_mut();
    let bytes = s.profile.control.image_bytes * jitter(&mut s.ctrl_rng, s.profile.control.jitter);
    let (_, done) = s.shipper.transfer(now, bytes);
    sim.schedule_at(done, move |sim| {
        let now = sim.now();
        {
            let s = sim.state_mut();
            s.records[i as usize].shipped_at = now.as_secs();
            s.tracer.record(now, i as u64, "shipped");
        }
        // Cold provisioning: microVM boot plus runtime/dependency
        // initialization (unbilled; warm containers skip both).
        let cold = {
            let s = sim.state_mut();
            (s.profile.control.cold_start_secs + s.work.dependency_load_secs)
                * jitter(&mut s.ctrl_rng, s.profile.control.jitter)
        };
        start_execution(sim, i, cold);
    });
}

/// Stage 4+5: microVM boot (parallel across servers — not a shared
/// resource) and execution under packing interference. Execution time is
/// independent of how many sibling instances run concurrently (Fig. 5a):
/// each microVM has reserved cores and memory.
fn start_execution(sim: &mut Sim<BurstState>, i: u32, provision_secs: f64) {
    let started = sim.now() + provision_secs;
    let s = sim.state_mut();
    let mut exec_rng = s.streams.stream_indexed("exec", i as u64);
    let exec = sampled_exec_secs(
        &s.profile.instance,
        &s.work,
        s.packing_degree,
        &mut exec_rng,
    );
    sim.schedule_at(started, move |sim| {
        let now = sim.now();
        let s = sim.state_mut();
        s.records[i as usize].started_at = now.as_secs();
        s.tracer.record(now, i as u64, "started");
        sim.schedule_in(exec, move |sim| {
            let now = sim.now();
            let s = sim.state_mut();
            s.records[i as usize].finished_at = now.as_secs();
            let server = s.placements[i as usize];
            s.fleet.release(server);
            s.tracer.record(now, i as u64, "finished");
        });
    });
}

/// Decompose the scaling time into the paper's Fig. 2 components:
/// per-stage aggregate service times (the stages pipeline, so the
/// end-to-end total is the measured last start, not the component sum).
fn breakdown(state: &BurstState) -> ScalingBreakdown {
    let records = &state.records;
    let max_of = |f: fn(&InstanceRecord) -> f64| records.iter().map(f).fold(0.0, f64::max);
    let sched = max_of(|r| r.scheduled_at);
    let shipped = max_of(|r| r.shipped_at);
    let started = max_of(|r| r.started_at);
    ScalingBreakdown {
        scheduling_secs: sched,
        startup_secs: state.builder.busy_seconds(),
        shipping_secs: state.shipper.busy_seconds(),
        provisioning_secs: (started - shipped).max(0.0),
        total_secs: started,
    }
}

fn compute_expense(profile: &PlatformProfile, spec: &BurstSpec, exec_secs: &[f64]) -> Expense {
    bill_burst(
        &profile.prices,
        &spec.workload,
        profile.instance.mem_gb,
        exec_secs,
        spec.packing_degree,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::work::WorkProfile;
    use propack_stats::percentile::Percentile;

    fn aws() -> CloudPlatform {
        PlatformBuilder::aws().build()
    }

    fn work() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 100.0).with_contention(0.2)
    }

    #[test]
    fn burst_produces_consistent_lifecycle() {
        let r = aws()
            .run_burst(&BurstSpec::new(work(), 200, 1).with_seed(3))
            .unwrap();
        assert_eq!(r.instances.len(), 200);
        for rec in &r.instances {
            assert!(rec.scheduled_at >= 0.0);
            assert!(rec.built_at >= rec.scheduled_at);
            assert!(rec.shipped_at >= rec.built_at);
            assert!(rec.started_at >= rec.shipped_at);
            assert!(rec.finished_at > rec.started_at);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = aws()
            .run_burst(&BurstSpec::new(work(), 100, 2).with_seed(9))
            .unwrap();
        let b = aws()
            .run_burst(&BurstSpec::new(work(), 100, 2).with_seed(9))
            .unwrap();
        assert_eq!(a, b);
        let c = aws()
            .run_burst(&BurstSpec::new(work(), 100, 2).with_seed(10))
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn scaling_time_grows_superlinearly_with_concurrency() {
        let p = aws();
        let s500 = p
            .run_burst(&BurstSpec::new(work(), 500, 1))
            .unwrap()
            .scaling_time();
        let s2000 = p
            .run_burst(&BurstSpec::new(work(), 2000, 1))
            .unwrap()
            .scaling_time();
        let s5000 = p
            .run_burst(&BurstSpec::new(work(), 5000, 1))
            .unwrap()
            .scaling_time();
        assert!(
            s2000 > 4.0 * s500,
            "quadratic term should dominate: {s500} {s2000}"
        );
        assert!(s5000 > 2.0 * s2000, "{s2000} {s5000}");
    }

    #[test]
    fn scaling_dominates_service_time_at_high_concurrency() {
        // Fig. 1: > 80 % of service time is scaling at C = 5000.
        let r = aws().run_burst(&BurstSpec::new(work(), 5000, 1)).unwrap();
        assert!(
            r.scaling_fraction() > 0.8,
            "fraction = {}",
            r.scaling_fraction()
        );
    }

    #[test]
    fn exec_time_flat_in_concurrency() {
        // Fig. 5a: mean execution time varies < 5 % from C = 500 to 5000.
        let p = aws();
        let m500 = p
            .run_burst(&BurstSpec::new(work(), 500, 1))
            .unwrap()
            .exec_summary()
            .mean();
        let m5000 = p
            .run_burst(&BurstSpec::new(work(), 5000, 1))
            .unwrap()
            .exec_summary()
            .mean();
        assert!((m500 - m5000).abs() / m500 < 0.05, "{m500} vs {m5000}");
    }

    #[test]
    fn packing_reduces_scaling_time() {
        // Fig. 6: at fixed C, scaling time falls with packing degree.
        let p = aws();
        let c = 2000u32;
        let mut prev = f64::INFINITY;
        for deg in [1u32, 2, 5, 10, 20] {
            let spec = BurstSpec::packed(work(), c, deg);
            let s = p.run_burst(&spec).unwrap().scaling_time();
            assert!(s < prev, "scaling at degree {deg} = {s} not smaller");
            prev = s;
        }
    }

    #[test]
    fn packing_increases_exec_time() {
        let p = aws();
        let e1 = p
            .run_burst(&BurstSpec::new(work(), 50, 1))
            .unwrap()
            .exec_summary()
            .mean();
        let e10 = p
            .run_burst(&BurstSpec::new(work(), 50, 10))
            .unwrap()
            .exec_summary()
            .mean();
        assert!(e10 > e1);
    }

    #[test]
    fn warm_instances_start_faster() {
        let p = aws();
        let cold = p
            .run_burst(&BurstSpec::new(work(), 500, 1).with_seed(4))
            .unwrap();
        let warm = p
            .run_burst(
                &BurstSpec::new(work(), 500, 1)
                    .with_seed(4)
                    .with_warm_fraction(1.0),
            )
            .unwrap();
        assert!(warm.scaling_time() < cold.scaling_time());
        assert!(warm.instances.iter().all(|r| r.warm));
    }

    #[test]
    fn memory_limit_enforced() {
        let heavy = WorkProfile::synthetic("heavy", 3.0, 10.0);
        let err = aws().run_burst(&BurstSpec::new(heavy, 10, 4)).unwrap_err();
        assert!(matches!(err, PlatformError::MemoryLimitExceeded { .. }));
    }

    #[test]
    fn execution_cap_enforced() {
        let slow = WorkProfile::synthetic("slow", 0.25, 800.0).with_contention(0.5);
        // Degree 1 fits under 900 s; degree 10 explodes past it.
        assert!(aws()
            .run_burst(&BurstSpec::new(slow.clone(), 10, 1))
            .is_ok());
        let err = aws().run_burst(&BurstSpec::new(slow, 10, 10)).unwrap_err();
        assert!(matches!(err, PlatformError::ExecutionTimeout { .. }));
    }

    #[test]
    fn empty_burst_rejected() {
        assert!(matches!(
            aws().run_burst(&BurstSpec::new(work(), 0, 1)),
            Err(PlatformError::EmptyBurst)
        ));
        assert!(matches!(
            aws().run_burst(&BurstSpec::new(work(), 10, 0)),
            Err(PlatformError::EmptyBurst)
        ));
    }

    #[test]
    fn service_time_metrics_ordered() {
        let r = aws().run_burst(&BurstSpec::new(work(), 1000, 1)).unwrap();
        let total = r.service_time(Percentile::Total);
        let tail = r.service_time(Percentile::Tail95);
        let med = r.service_time(Percentile::Median);
        assert!(total >= tail && tail >= med && med > 0.0);
    }

    #[test]
    fn expense_independent_of_scaling() {
        // Same exec profile at two very different concurrency levels must
        // bill proportionally to instance count only.
        let p = aws();
        let e500 = p
            .run_burst(&BurstSpec::new(work(), 500, 1))
            .unwrap()
            .expense
            .total_usd();
        let e5000 = p
            .run_burst(&BurstSpec::new(work(), 5000, 1))
            .unwrap()
            .expense
            .total_usd();
        let ratio = e5000 / e500;
        assert!((ratio - 10.0).abs() < 0.2, "ratio = {ratio}");
    }

    #[test]
    fn nominal_exec_matches_instance_model() {
        let p = aws();
        let w = work();
        assert_eq!(
            p.nominal_exec_secs(&w, 7),
            packed_exec_secs(&p.profile().instance, &w, 7)
        );
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::work::WorkProfile;

    #[test]
    fn traced_burst_records_full_lifecycle() {
        let p = PlatformBuilder::aws().build();
        let spec = BurstSpec::new(WorkProfile::synthetic("w", 0.25, 10.0), 20, 1).with_seed(4);
        let (report, trace) = p.run_burst_traced(&spec).unwrap();
        // 5 stages per cold instance.
        assert_eq!(trace.len(), 5 * 20);
        for i in 0..20u64 {
            let stages: Vec<&str> = trace.for_entity(i).map(|e| e.stage).collect();
            assert_eq!(
                stages,
                vec!["scheduled", "built", "shipped", "started", "finished"]
            );
            // Trace timestamps agree with the report's records.
            let rec = &report.instances[i as usize];
            assert_eq!(trace.when(i, "started").unwrap().as_secs(), rec.started_at);
            assert_eq!(
                trace.when(i, "finished").unwrap().as_secs(),
                rec.finished_at
            );
        }
    }

    #[test]
    fn untraced_burst_matches_traced_report() {
        // Tracing must be observation-only: identical timeline either way.
        let p = PlatformBuilder::aws().build();
        let spec = BurstSpec::new(WorkProfile::synthetic("w", 0.25, 10.0), 50, 2).with_seed(6);
        let plain = p.run_burst(&spec).unwrap();
        let (traced, trace) = p.run_burst_traced(&spec).unwrap();
        assert_eq!(plain, traced);
        assert!(!trace.is_empty());
    }

    #[test]
    fn warm_instances_skip_build_and_ship_stages() {
        let p = PlatformBuilder::aws().build();
        let spec = BurstSpec::new(WorkProfile::synthetic("w", 0.25, 10.0), 10, 1)
            .with_seed(8)
            .with_warm_fraction(1.0);
        let (_, trace) = p.run_burst_traced(&spec).unwrap();
        assert_eq!(trace.at_stage("built").count(), 0);
        assert_eq!(trace.at_stage("shipped").count(), 0);
        assert_eq!(trace.at_stage("started").count(), 10);
    }
}

#[cfg(test)]
mod fleet_tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::work::WorkProfile;

    #[test]
    fn oversized_burst_rejected_at_admission() {
        // A fleet of 2000×16 slots admits at most 32 000 concurrent
        // instances; beyond that the platform throttles.
        let p = PlatformBuilder::aws().build();
        let w = WorkProfile::synthetic("w", 0.25, 1.0);
        let err = p.run_burst(&BurstSpec::new(w, 40_000, 1)).unwrap_err();
        assert!(matches!(
            err,
            PlatformError::FleetSaturated {
                capacity: 32_000,
                ..
            }
        ));
    }

    #[test]
    fn small_fleet_saturates_small() {
        let mut profile = PlatformProfile::aws_lambda();
        profile.control.fleet_servers = 10;
        profile.control.fleet_slots = 4;
        let p = CloudPlatform::new(profile);
        let w = WorkProfile::synthetic("w", 0.25, 1.0);
        assert!(p.run_burst(&BurstSpec::new(w.clone(), 40, 1)).is_ok());
        assert!(matches!(
            p.run_burst(&BurstSpec::new(w, 41, 1)),
            Err(PlatformError::FleetSaturated { .. })
        ));
    }

    #[test]
    fn placements_spread_across_the_fleet() {
        // Least-loaded placement keeps per-server occupancy near the
        // theoretical minimum — the isolation that makes Fig. 5a's flat
        // execution time possible.
        let mut profile = PlatformProfile::aws_lambda();
        profile.control.fleet_servers = 100;
        profile.control.fleet_slots = 16;
        let p = CloudPlatform::new(profile);
        let w = WorkProfile::synthetic("w", 0.25, 10.0);
        // 400 instances over 100 servers → peak occupancy should be ~4.
        let report = p
            .run_burst(&BurstSpec::new(w, 400, 1).with_seed(3))
            .unwrap();
        assert_eq!(report.instances.len(), 400);
    }
}
