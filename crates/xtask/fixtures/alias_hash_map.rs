//! simlint fixture: aliases randomized-order maps, in a crate where the
//! `hash-map` rule does not apply — so the definitions themselves are
//! clean here, and only the cross-file alias table carries them onward.
//! Analyzed together with `alias_hash_map_use.rs`.

pub use std::collections::HashMap as FastMap;

pub type SpeedyCache = std::collections::HashMap<u64, u64>;
