//! Step-Functions-style workflow orchestration over serverless platforms.
//!
//! The paper invokes its concurrent bursts through **AWS Step Functions**
//! (§3: "To invoke Lambdas concurrently, we use the 'Step Functions'
//! framework as it provides dynamic parallelism"), and its benchmark
//! applications are really *workflows*: Sort is a mapper stage, a
//! concurrent sort stage, and a reducing merge to S3; Video chains chunking
//! → parallel encode/classify → aggregation. This crate is that substrate:
//! a small state-machine orchestrator in the Step Functions mold whose
//! `Map` state provides the dynamic fan-out the paper relies on — with or
//! without ProPack packing the fan-out.
//!
//! States:
//! * [`State::Task`] — one function invocation;
//! * [`State::Map`] — dynamic parallelism: `concurrency` invocations of one
//!   function at a chosen [`MapPacking`] (the hook where ProPack plugs in);
//! * [`State::Sequence`] — run children one after another;
//! * [`State::Parallel`] — run children branches concurrently, join on the
//!   slowest.
//!
//! The orchestrator executes against any [`ServerlessPlatform`](propack_platform::ServerlessPlatform) and
//! produces a [`WorkflowReport`] with the same service-time/expense
//! vocabulary as single bursts, so experiments compare packed and unpacked
//! *workflows*, not just bursts.

pub mod retry;
pub mod run;
pub mod state;

pub use retry::RetriedRun;
pub use run::{
    execute, execute_faulted, execute_with_cache, execute_with_cache_faulted, StateReport,
    WorkflowReport,
};
pub use state::{MapPacking, State, Workflow};

/// Errors from workflow validation and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkflowError {
    /// The platform rejected a burst.
    Platform(propack_platform::PlatformError),
    /// A Map state asked for zero concurrency.
    EmptyMap {
        /// Name of the offending state.
        state: String,
    },
    /// A workflow with no states.
    EmptyWorkflow,
    /// ProPack planning failed inside a `MapPacking::ProPack` state.
    Planning(String),
}

impl From<propack_platform::PlatformError> for WorkflowError {
    fn from(e: propack_platform::PlatformError) -> Self {
        WorkflowError::Platform(e)
    }
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::Platform(e) => write!(f, "platform error: {e}"),
            WorkflowError::EmptyMap { state } => write!(f, "map state '{state}' has concurrency 0"),
            WorkflowError::EmptyWorkflow => write!(f, "workflow has no states"),
            WorkflowError::Planning(msg) => write!(f, "propack planning failed: {msg}"),
        }
    }
}

impl std::error::Error for WorkflowError {}
