//! Cross-crate integration tests: the paper's headline claims, end to end.
//!
//! Each test builds ProPack from scratch on the simulated platform (probes,
//! fits, planning, execution) and checks the evaluation section's key
//! numbers as *bands*: who wins, by roughly what factor, where crossovers
//! fall.

use propack_repro::baselines::{NoPacking, Oracle, OracleObjective, Pywren, Strategy};
use propack_repro::funcx::FuncXPlatform;
use propack_repro::platform::profile::PlatformProfile;
use propack_repro::platform::PlatformBuilder;
use propack_repro::platform::{BurstSpec, CloudPlatform, ServerlessPlatform};
use propack_repro::propack::optimizer::Objective;
use propack_repro::propack::propack::{ProPackConfig, Propack};
use propack_repro::stats::percentile::Percentile;
use propack_repro::workloads::Benchmarks;

fn aws() -> CloudPlatform {
    PlatformBuilder::aws().build()
}

#[test]
fn propack_improves_every_primary_benchmark_at_every_concurrency() {
    // Fig. 9: "ProPack reduces the total service time for all applications
    // and at all concurrency levels, by more than 50% in most cases".
    let platform = aws();
    for bench in Benchmarks::primary() {
        let work = bench.profile();
        let pp = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
        for c in [500u32, 1000, 2000, 5000] {
            let base = NoPacking.run(&platform, &work, c, 1).unwrap();
            let out = pp.execute(&platform, c, Objective::default(), 1).unwrap();
            let gain = 1.0 - out.report.total_service_time() / base.total_service_secs();
            assert!(
                gain > 0.0,
                "{} at C={c}: no service gain ({gain:.2})",
                work.name
            );
            if c >= 2000 {
                assert!(
                    gain > 0.5,
                    "{} at C={c}: gain {gain:.2} below 50%",
                    work.name
                );
            }
        }
    }
}

#[test]
fn headline_numbers_at_high_concurrency() {
    // Paper abstract: ~85% service improvement and ~66% cost saving at
    // C = 5000 on average. Accept a generous band around both.
    let platform = aws();
    let mut service_gains = Vec::new();
    let mut expense_gains = Vec::new();
    for bench in Benchmarks::primary() {
        let work = bench.profile();
        let pp = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
        let base = NoPacking.run(&platform, &work, 5000, 2).unwrap();
        let out = pp
            .execute(&platform, 5000, Objective::default(), 2)
            .unwrap();
        service_gains.push(1.0 - out.report.total_service_time() / base.total_service_secs());
        expense_gains.push(1.0 - out.expense_with_overhead_usd() / base.expense_usd);
    }
    let avg_s = service_gains.iter().sum::<f64>() / 3.0;
    let avg_e = expense_gains.iter().sum::<f64>() / 3.0;
    assert!(
        (0.70..0.95).contains(&avg_s),
        "avg service gain {avg_s:.2} outside band"
    );
    assert!(
        (0.55..0.95).contains(&avg_e),
        "avg expense gain {avg_e:.2} outside band"
    );
}

#[test]
fn propack_degree_tracks_oracle_within_tolerance() {
    // §1 / Fig. 8: the model finds the oracle degree with high accuracy
    // (paper: >95%, off by ≤2 in its two miss cases).
    let platform = aws();
    for bench in Benchmarks::primary() {
        let work = bench.profile();
        let pp = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
        for c in [1000u32, 2000, 5000] {
            let plan = pp.plan(c, Objective::default()).unwrap();
            let oracle = Oracle
                .search(
                    &platform,
                    &work,
                    c,
                    OracleObjective::Joint {
                        w_s: 0.5,
                        metric: Percentile::Total,
                    },
                    3,
                )
                .unwrap();
            assert!(
                plan.packing_degree.abs_diff(oracle.packing_degree) <= 2,
                "{} C={c}: propack {} vs oracle {}",
                work.name,
                plan.packing_degree,
                oracle.packing_degree
            );
        }
    }
}

#[test]
fn propack_beats_pywren_increasingly_with_concurrency() {
    // Fig. 19: ProPack beats the state-of-the-art workload manager, and
    // §1: Pywren works at low concurrency but fades at high concurrency.
    let platform = aws();
    let work = Benchmarks::primary()[1].profile(); // Sort
    let pp = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
    let mut gains = Vec::new();
    for c in [1000u32, 5000] {
        let pywren = Pywren::default().run(&platform, &work, c, 4).unwrap();
        let out = pp.execute(&platform, c, Objective::default(), 4).unwrap();
        gains.push(1.0 - out.report.total_service_time() / pywren.total_service_secs());
    }
    assert!(
        gains[0] > 0.0,
        "ProPack must beat Pywren at C=1000: {gains:?}"
    );
    assert!(
        gains[1] > gains[0],
        "ProPack's edge must grow with concurrency: {gains:?}"
    );
    assert!(
        gains[1] > 0.4,
        "at C=5000 the edge should exceed 40%: {gains:?}"
    );
}

#[test]
fn funcx_scales_faster_but_packed_lambda_serves_faster() {
    // Fig. 18, both panels.
    let aws = aws();
    let fx = FuncXPlatform::default();
    let work = Benchmarks::primary()[1].profile();
    let spec = BurstSpec::new(work.clone(), 5000, 1).with_seed(5);
    let s_aws = aws.run_burst(&spec).unwrap().scaling_time();
    let s_fx = fx.run_burst(&spec).unwrap().scaling_time();
    assert!(
        (0.75..0.95).contains(&(s_fx / s_aws)),
        "FuncX should scale ~15% faster: ratio {}",
        s_fx / s_aws
    );

    let pp_aws = Propack::build(&aws, &work, &ProPackConfig::default()).unwrap();
    let pp_fx = Propack::build(&fx, &work, &ProPackConfig::default()).unwrap();
    let mut advantages = Vec::new();
    for c in [500u32, 1000, 2000, 5000] {
        let out_aws = pp_aws.execute(&aws, c, Objective::default(), 5).unwrap();
        let out_fx = pp_fx.execute(&fx, c, Objective::default(), 5).unwrap();
        advantages
            .push(1.0 - out_aws.report.total_service_time() / out_fx.report.total_service_time());
    }
    let avg = advantages.iter().sum::<f64>() / advantages.len() as f64;
    assert!(
        (0.05..0.25).contains(&avg),
        "packed AWS should average ~12% faster than FuncX: {avg:.3} ({advantages:?})"
    );
}

#[test]
fn network_fee_platforms_save_more_expense() {
    // Fig. 21: the expense improvement on Google/Azure exceeds AWS because
    // packing also de-bills inter-function traffic there.
    let work = Benchmarks::primary()[0].profile(); // Video
    let mut gains = Vec::new();
    for profile in [
        PlatformProfile::aws_lambda(),
        PlatformProfile::google_cloud_functions(),
        PlatformProfile::azure_functions(),
    ] {
        let platform = CloudPlatform::new(profile);
        let pp = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
        let base = NoPacking.run(&platform, &work, 1000, 6).unwrap();
        let out = pp
            .execute(&platform, 1000, Objective::default(), 6)
            .unwrap();
        gains.push(1.0 - out.expense_with_overhead_usd() / base.expense_usd);
    }
    assert!(
        gains[1] > gains[0],
        "Google {should} beat AWS: {gains:?}",
        should = "should"
    );
    assert!(gains[2] > gains[0], "Azure should beat AWS: {gains:?}");
}

#[test]
fn dedicated_objectives_dominate_joint_on_their_own_metric() {
    // Figs. 13–14.
    let platform = aws();
    for bench in Benchmarks::all() {
        let work = bench.profile();
        let pp = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
        let c = 2000;
        let joint = pp.execute(&platform, c, Objective::default(), 7).unwrap();
        let svc = pp.execute(&platform, c, Objective::ServiceTime, 7).unwrap();
        let exp = pp.execute(&platform, c, Objective::Expense, 7).unwrap();
        assert!(
            svc.report.total_service_time() <= joint.report.total_service_time() * 1.02,
            "{}: service-only should not lose on service",
            work.name
        );
        assert!(
            exp.expense_with_overhead_usd() <= joint.expense_with_overhead_usd() * 1.02,
            "{}: expense-only should not lose on expense",
            work.name
        );
    }
}

#[test]
fn scaling_model_transfers_across_applications() {
    // Fig. 5b's consequence: one scaling fit serves every application. The
    // plans produced with a transferred scaling model must match plans from
    // a from-scratch build.
    let platform = aws();
    let cfg = ProPackConfig::default();
    let first = Propack::build(&platform, &Benchmarks::primary()[0].profile(), &cfg).unwrap();
    for bench in Benchmarks::primary().iter().skip(1) {
        let work = bench.profile();
        let reused = Propack::build_with_scaling(
            &platform,
            &work,
            &cfg,
            first.model.scaling,
            Default::default(),
        )
        .unwrap();
        let fresh = Propack::build(&platform, &work, &cfg).unwrap();
        for c in [1000u32, 5000] {
            let a = reused.plan(c, Objective::default()).unwrap().packing_degree;
            let b = fresh.plan(c, Objective::default()).unwrap().packing_degree;
            assert!(a.abs_diff(b) <= 1, "{} C={c}: {a} vs {b}", work.name);
        }
    }
}
