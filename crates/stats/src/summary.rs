//! Streaming summary statistics (Welford's online algorithm).
//!
//! Used by the simulator's measurement collectors: per-instance execution
//! times, start-delay distributions, billing aggregates. Welford's update is
//! numerically stable for the long runs the simulator produces.

/// Online mean / variance / extrema accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Build a summary from a slice in one call.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in values {
            s.record(v);
        }
        s
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (0.0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std dev / mean); 0.0 for zero mean.
    ///
    /// Used to verify the paper's Fig. 5(a) claim that execution-time
    /// variation across concurrency levels stays below 5 %.
    pub fn coeff_of_variation(&self) -> f64 {
        let m = self.mean();
        // simlint: allow(float-eq): "CV is undefined only at exactly-zero mean; documented 0.0 sentinel"
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m.abs()
        }
    }

    /// Minimum observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let whole = Summary::from_slice(&data);
        let mut a = Summary::from_slice(&data[..33]);
        let b = Summary::from_slice(&data[33..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_slice(&[1.0, 2.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn coefficient_of_variation() {
        let s = Summary::from_slice(&[100.0, 100.0, 100.0]);
        assert_eq!(s.coeff_of_variation(), 0.0);
        let s2 = Summary::from_slice(&[95.0, 100.0, 105.0]);
        assert!(
            s2.coeff_of_variation() < 0.05,
            "cv = {}",
            s2.coeff_of_variation()
        );
    }
}
