//! The five benchmark applications from the paper's §3, each in two forms:
//!
//! 1. a **real Rust kernel** (`run_once`) — actual computation a packed
//!    executor can run on host threads (`propack-executor` uses these to
//!    measure genuine interference on real hardware);
//! 2. a **simulator work profile** (`profile`) — memory footprint, isolated
//!    execution time, contention rate, and storage/network traffic,
//!    calibrated to the per-application numbers the paper reports
//!    (maximum packing degrees 40 / 15 / 30 / 35 for Video / Sort /
//!    Stateless Cost / Smith-Waterman — Figs. 8 and 17).
//!
//! | Benchmark | Paper workload | Kernel here |
//! |---|---|---|
//! | [`video::Video`] | Thousand Island Scanner: chunked video encode + MXNET DNN classify | 8×8 DCT + quantization over synthetic frames, then a small MLP classifier |
//! | [`sort::MapReduceSort`] | Hadoop terasort-style map-reduce sort to S3 | partition → per-function merge sort → k-way reduce merge |
//! | [`stateless::StatelessCost`] | image resizing (ServerlessBench "stateless cost") | bilinear resampling of synthetic RGB images |
//! | [`smith_waterman::SmithWaterman`] | protein-sequence comparison | full Smith-Waterman affine-gap DP with a BLOSUM-style matrix |
//! | [`xapian::Xapian`] | search over Wikipedia pages, tail-latency QoS | inverted index + BM25 top-k over a synthetic corpus |

pub mod smith_waterman;
pub mod sort;
pub mod stateless;
pub mod video;
pub mod xapian;

pub use propack_platform::WorkProfile;

/// Result of executing one real workload kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkOutput {
    /// Order-independent checksum of the kernel's output, for verifying
    /// that packed (threaded) execution computes the same result as
    /// isolated execution.
    pub checksum: u64,
    /// Abstract work units completed (kernel-specific; used by throughput
    /// assertions in the executor tests).
    pub work_units: u64,
}

/// A benchmark application: a real kernel plus its simulator calibration.
pub trait Workload: Send + Sync {
    /// Display name matching the paper's figures.
    fn name(&self) -> &'static str;

    /// Simulator-facing profile (memory, base time, contention, traffic).
    fn profile(&self) -> WorkProfile;

    /// Execute the real kernel once with deterministic input derived from
    /// `input_seed`. The same seed always produces the same checksum,
    /// regardless of packing or thread interleaving.
    fn run_once(&self, input_seed: u64) -> WorkOutput;
}

/// The benchmark catalog: the single entry point for enumerating or
/// resolving the paper's applications.
///
/// ```
/// use propack_workloads::Benchmarks;
///
/// assert_eq!(Benchmarks::primary().len(), 3);
/// assert_eq!(Benchmarks::all().len(), 5);
/// let video = Benchmarks::resolve("video").unwrap();
/// assert_eq!(video.name(), "Video");
/// ```
pub struct Benchmarks;

impl Benchmarks {
    /// The paper's three primary benchmarks (Figs. 1, 4, 7–16, 19, 21).
    pub fn primary() -> Vec<Box<dyn Workload>> {
        vec![
            Box::new(video::Video::default()),
            Box::new(sort::MapReduceSort::default()),
            Box::new(stateless::StatelessCost::default()),
        ]
    }

    /// All five benchmarks (adds Smith-Waterman, Fig. 17, and Xapian,
    /// Fig. 20).
    pub fn all() -> Vec<Box<dyn Workload>> {
        let mut v = Self::primary();
        v.push(Box::new(smith_waterman::SmithWaterman::default()));
        v.push(Box::new(xapian::Xapian::default()));
        v
    }

    /// Look a benchmark up by a case-insensitive key: either the display
    /// name ("Smith-Waterman") or a compact alias ("sw", "video", "sort",
    /// "stateless", "xapian").
    pub fn resolve(key: &str) -> Option<Box<dyn Workload>> {
        let k = key.to_ascii_lowercase();
        Self::all().into_iter().find(|w| {
            let name = w.name().to_ascii_lowercase();
            name == k
                || name.replace(['-', ' '], "") == k.replace(['-', ' '], "")
                || matches!(
                    (name.as_str(), k.as_str()),
                    ("smith-waterman", "sw") | ("stateless cost", "stateless")
                )
        })
    }
}

/// A 64-bit mixing hash (splitmix64 finalizer) used by kernels to fold
/// outputs into order-independent checksums and to derive input data.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_expected_names() {
        let names: Vec<&str> = Benchmarks::all().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "Video",
                "Sort",
                "Stateless Cost",
                "Smith-Waterman",
                "Xapian"
            ]
        );
    }

    #[test]
    fn max_packing_degrees_match_paper() {
        // Fig. 8: max degrees 40 (Video), 15 (Sort), 30 (Stateless);
        // Fig. 17: 35 (Smith-Waterman). Computed against the 10 GB AWS cap.
        let expect = [
            ("Video", 40),
            ("Sort", 15),
            ("Stateless Cost", 30),
            ("Smith-Waterman", 35),
            ("Xapian", 25),
        ];
        for (w, (name, deg)) in Benchmarks::all().iter().zip(expect) {
            assert_eq!(w.name(), name);
            assert_eq!(
                w.profile().max_packing_degree(10.0),
                deg,
                "{name} max packing degree"
            );
        }
    }

    #[test]
    fn kernels_deterministic_per_seed() {
        for w in Benchmarks::all() {
            let a = w.run_once(42);
            let b = w.run_once(42);
            assert_eq!(a, b, "{} kernel not deterministic", w.name());
            let c = w.run_once(43);
            assert_ne!(a.checksum, c.checksum, "{} checksum ignores seed", w.name());
        }
    }

    #[test]
    fn profiles_have_positive_base_times() {
        for w in Benchmarks::all() {
            let p = w.profile();
            assert!(p.base_exec_secs > 0.0);
            assert!(p.mem_gb > 0.0);
            assert!(p.contention_per_gb > 0.0);
        }
    }
}
