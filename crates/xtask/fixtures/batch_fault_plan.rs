//! simlint fixture: the batch-fault plan side. Linted as if it were a
//! `crates/simcore/src/batch_fault.rs`, so the `fault-rng` rule applies
//! (file name contains `fault`). Declares the lane registry the companion
//! `batch_fault_drive.rs` draws from through the bulk-head API — both
//! lanes must be seen as *live* via `head_indexed{,4,8}` call sites.

pub mod lanes {
    /// Drawn via `head_indexed` in `batch_fault_drive.rs`.
    pub const FAULT_CRASH: &str = "fault-crash";
    /// Drawn via `head_indexed4`/`head_indexed8` in `batch_fault_drive.rs`.
    pub const FAULT_EXEC: &str = "fault-exec";

    /// Every registered lane.
    pub const ALL: &[&str] = &[FAULT_CRASH, FAULT_EXEC];
}

pub fn crash_plan(seed: u64) -> f64 {
    // Hand-rolled generator instead of the seeded lane tree: two findings
    // on one line (the RNG type and the seeding constructor).
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.random::<f64>()
}
