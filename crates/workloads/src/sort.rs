//! Sort: the Map-Reduce Sort workload.
//!
//! The paper's Sort benchmark is a Hadoop-style distributed sort: a mapper
//! partitions the input into arrays, each array is sorted by a separate
//! serverless function, and results are merged to shared storage (S3).
//! Turnaround time is the figure of merit — this is the benchmark whose
//! functions cooperate on a single job, which is why explicit serialization
//! (batching) hurts it (§1).
//!
//! The kernel implements all three phases honestly: range partitioning,
//! a hand-written bottom-up merge sort per partition (the per-function
//! work), and a k-way merge with verification.
//!
//! Simulator calibration: `M_func = 0.64 GB` → maximum packing degree 15 on
//! a 10 GB Lambda (Fig. 8); Sort has the steepest interference curve of the
//! three primary benchmarks (Fig. 4) and the heaviest storage traffic.

use crate::{mix64, WorkOutput, Workload};
use propack_platform::{ResourceKind, WorkProfile};

/// The Map-Reduce Sort workload.
#[derive(Debug, Clone)]
pub struct MapReduceSort {
    /// Records per invocation.
    pub records: usize,
    /// Number of partitions the mapper creates.
    pub partitions: usize,
}

impl Default for MapReduceSort {
    fn default() -> Self {
        MapReduceSort {
            records: 40_000,
            partitions: 8,
        }
    }
}

/// Deterministic record stream for a seed.
fn generate_records(seed: u64, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| mix64(seed.wrapping_add(i.wrapping_mul(0x2545_F491_4F6C_DD1D))))
        .collect()
}

/// Map phase: range-partition records into `k` buckets by key prefix.
fn partition(records: &[u64], k: usize) -> Vec<Vec<u64>> {
    let mut buckets = vec![Vec::with_capacity(records.len() / k + 1); k];
    let span = u64::MAX / k as u64 + 1;
    for &r in records {
        let b = (r / span) as usize;
        buckets[b.min(k - 1)].push(r);
    }
    buckets
}

/// The per-function work: bottom-up (iterative) merge sort.
///
/// Hand-written rather than `slice::sort` so the kernel's work profile is
/// under our control and the merge logic is exercised by tests.
#[allow(clippy::ptr_arg)] // callers own growable partitions; a slice would force re-borrowing at every call site
pub fn merge_sort(data: &mut Vec<u64>) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let mut buf = vec![0u64; n];
    let mut width = 1usize;
    while width < n {
        let mut lo = 0;
        while lo < n {
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            merge_runs(&data[lo..mid], &data[mid..hi], &mut buf[lo..hi]);
            lo = hi;
        }
        data.copy_from_slice(&buf);
        width *= 2;
    }
}

fn merge_runs(a: &[u64], b: &[u64], out: &mut [u64]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Reduce phase: k-way merge of sorted partitions (binary heap of cursors).
fn kway_merge(parts: &[Vec<u64>]) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = parts
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.is_empty())
        .map(|(pi, p)| Reverse((p[0], pi, 0)))
        .collect();
    while let Some(Reverse((v, pi, idx))) = heap.pop() {
        out.push(v);
        if idx + 1 < parts[pi].len() {
            heap.push(Reverse((parts[pi][idx + 1], pi, idx + 1)));
        }
    }
    out
}

impl Workload for MapReduceSort {
    fn name(&self) -> &'static str {
        "Sort"
    }

    fn profile(&self) -> WorkProfile {
        WorkProfile {
            name: "Sort".to_string(),
            mem_gb: 0.64,
            base_exec_secs: 100.0,
            contention_per_gb: 0.1406, // ≈ 0.09 per packing degree: Fig. 4's steepest curve
            storage_gb: 0.25,          // partition spill + merged output on S3
            storage_requests: 12,
            network_gb: 0.08,          // shuffle traffic between mappers and sorters
            dependency_load_secs: 8.0, // Hadoop runtime/jars on a cold container
            resource_kind: ResourceKind::Memory, // merge passes stream the memory bus
        }
    }

    fn run_once(&self, input_seed: u64) -> WorkOutput {
        let records = generate_records(input_seed, self.records);
        let mut parts = partition(&records, self.partitions);
        for p in parts.iter_mut() {
            merge_sort(p);
        }
        let merged = kway_merge(&parts);
        debug_assert!(merged.windows(2).all(|w| w[0] <= w[1]));

        // Checksum: order-dependent fold of the fully sorted output —
        // catches both missing records and mis-sorts.
        let mut checksum = 0xFEED_FACE_u64 ^ input_seed;
        for (i, &r) in merged.iter().enumerate() {
            checksum = mix64(checksum ^ r.rotate_left((i % 61) as u32));
        }
        WorkOutput {
            checksum,
            work_units: merged.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sort_sorts() {
        let mut v = generate_records(3, 1000);
        merge_sort(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn merge_sort_agrees_with_std() {
        let mut a = generate_records(7, 513); // odd length exercises tail runs
        let mut b = a.clone();
        merge_sort(&mut a);
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn merge_sort_edge_cases() {
        let mut empty: Vec<u64> = vec![];
        merge_sort(&mut empty);
        assert!(empty.is_empty());

        let mut one = vec![42u64];
        merge_sort(&mut one);
        assert_eq!(one, vec![42]);

        let mut dup = vec![5u64, 5, 5, 1, 1];
        merge_sort(&mut dup);
        assert_eq!(dup, vec![1, 1, 5, 5, 5]);
    }

    #[test]
    fn partition_preserves_all_records_and_respects_ranges() {
        let records = generate_records(11, 5000);
        let parts = partition(&records, 8);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 5000);
        let span = u64::MAX / 8 + 1;
        for (b, p) in parts.iter().enumerate() {
            for &r in p {
                assert_eq!(((r / span) as usize).min(7), b);
            }
        }
    }

    #[test]
    fn kway_merge_produces_global_order() {
        let records = generate_records(13, 3000);
        let mut parts = partition(&records, 5);
        for p in parts.iter_mut() {
            merge_sort(p);
        }
        let merged = kway_merge(&parts);
        assert_eq!(merged.len(), 3000);
        assert!(merged.windows(2).all(|w| w[0] <= w[1]));
        // Same multiset as the input.
        let mut expect = records;
        expect.sort_unstable();
        assert_eq!(merged, expect);
    }

    #[test]
    fn kway_merge_handles_empty_partitions() {
        let parts = vec![vec![], vec![1, 3], vec![], vec![2]];
        assert_eq!(kway_merge(&parts), vec![1, 2, 3]);
    }

    #[test]
    fn end_to_end_work_units_equal_record_count() {
        let s = MapReduceSort {
            records: 2000,
            partitions: 4,
        };
        let out = s.run_once(21);
        assert_eq!(out.work_units, 2000);
    }

    #[test]
    fn profile_matches_paper_calibration() {
        let p = MapReduceSort::default().profile();
        assert_eq!(p.max_packing_degree(10.0), 15);
    }
}
