//! Criterion bench for the simulation kernel: the `BENCH_kernel.json` grid
//! under the statistical harness. The `kernel_bench` binary is the CI gate
//! (warmup + best-of-reps + golden bit-identity check); this bench is for
//! local investigation — per-group distributions, outlier detection, and
//! `--baseline` comparisons across kernel changes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use propack_bench::kernel::{golden_render, kernel_grid, KERNEL_SEED};
use propack_sweep::SweepRunner;
use std::hint::black_box;

/// One serial pass over the full 16-cell kernel grid, fresh model cache per
/// iteration (fit cost is part of what the kernel bench measures).
fn bench_kernel_grid(c: &mut Criterion) {
    let spec = kernel_grid();
    let mut g = c.benchmark_group("kernel");
    g.throughput(Throughput::Elements(spec.cell_count() as u64));
    g.bench_function("grid_16_cells_serial", |b| {
        b.iter(|| {
            SweepRunner::new()
                .threads(1)
                .run(black_box(&spec))
                .expect("kernel grid must run")
        })
    });
    g.finish();
}

/// The cohort fast path's burst, end to end: one golden configuration per
/// platform so a placement or event-queue regression shows up here before
/// it shows up as a grid slowdown.
fn bench_golden_bursts(c: &mut Criterion) {
    let mut g = c.benchmark_group("golden_burst");
    g.bench_function("aws_sort_c1000", |b| {
        b.iter(|| golden_render(black_box("aws"), "sort", 1000, "fault-free").expect("burst"))
    });
    g.bench_function("funcx_video_c1000", |b| {
        b.iter(|| golden_render(black_box("funcx"), "video", 1000, "fault-free").expect("burst"))
    });
    g.bench_function("aws_sort_c1000_crash001", |b| {
        b.iter(|| golden_render(black_box("aws"), "sort", 1000, "crash001").expect("burst"))
    });
    let _ = KERNEL_SEED; // grid and goldens share the CI smoke seed
    g.finish();
}

criterion_group!(benches, bench_kernel_grid, bench_golden_bursts);
criterion_main!(benches);
