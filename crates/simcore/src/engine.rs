//! The event loop: a simulated clock plus a deterministic priority queue of
//! scheduled events, backed by slot pools instead of per-event boxes.
//!
//! Two kinds of events share one queue and one tie-breaking sequence:
//!
//! * **Typed events** (`S::Event` where `S: EventState`) — the fast path.
//!   The event value is stored by value in a recycled slot pool and the heap
//!   holds only a `(time, seq, slot)` entry, so scheduling a typed event
//!   performs **no heap allocation** once the pools reach steady state.
//!   Platform simulators route their per-instance pipeline stages through
//!   this path (`simlint`'s `event-alloc` rule enforces it).
//! * **Closure events** (`FnOnce(&mut Sim<S>)`) — the general fallback for
//!   one-off callbacks and tests. Each closure still costs one `Box`, but
//!   the box lives in a slot pool, keeping heap entries uniform and small.
//!
//! Firing an event may freely schedule more events (the event is taken out
//! of its pool before it runs, so the borrow is clean). Ties in timestamp
//! are broken by scheduling sequence number — shared across both event
//! kinds — which makes runs reproducible: an essential property for the
//! paper-reproduction experiments, where every figure must regenerate
//! identically from a seed.
//!
//! Event closures and typed events are required to be `Send` so that
//! `Sim<S>: Send` whenever the user state `S` is `Send`. A simulation still
//! runs on exactly one thread — the bound exists so the parallel sweep
//! engine (`propack-sweep`) can hand whole simulations to worker threads.

use crate::time::SimTime;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

type EventFn<S> = Box<dyn FnOnce(&mut Sim<S>) + Send>;

/// User state that defines a typed event vocabulary.
///
/// Implementing this unlocks [`Sim::schedule_event`],
/// [`Sim::schedule_event_in`], and [`Sim::schedule_batch`]: events are plain
/// values of `Self::Event` (typically a small enum), stored in a recycled
/// pool and dispatched through [`EventState::handle`] — no per-event heap
/// allocation, unlike closure scheduling.
///
/// # Example
/// ```
/// use propack_simcore::{EventState, Sim, SimTime};
///
/// struct Counter {
///     total: u64,
/// }
/// enum Ev {
///     Add(u64),
/// }
/// impl EventState for Counter {
///     type Event = Ev;
///     fn handle(sim: &mut Sim<Self>, ev: Ev) {
///         match ev {
///             Ev::Add(n) => sim.state_mut().total += n,
///         }
///     }
/// }
///
/// let mut sim = Sim::new(Counter { total: 0 });
/// sim.schedule_batch(SimTime::ZERO, (1..=4).map(Ev::Add));
/// sim.run();
/// assert_eq!(sim.state().total, 10);
/// ```
pub trait EventState: Sized {
    /// The typed event vocabulary (usually a small enum).
    type Event: Send + 'static;

    /// Fire one event against the simulation.
    fn handle(sim: &mut Sim<Self>, event: Self::Event);
}

/// Where a heap entry's payload lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Index into the closure pool (fallback path).
    Closure(u32),
    /// Index into the typed-event pool (fast path).
    Typed(u32),
}

/// A heap entry: 24 bytes, no payload, no per-`S` code. The payload sits in
/// a pool slot and is reclaimed when the event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: Slot,
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A slot pool: insert returns a stable index, take frees it for reuse.
/// Slots are recycled LIFO so a steady-state simulation stops allocating.
struct Pool<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Pool<T> {
    fn new() -> Self {
        Pool {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(value);
                i
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn take(&mut self, index: u32) -> Option<T> {
        let taken = self.slots.get_mut(index as usize)?.take();
        if taken.is_some() {
            self.free.push(index);
        }
        taken
    }

    /// Allocated slot count (occupied + recyclable) — test observability.
    #[cfg(test)]
    fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// A discrete-event simulation over user state `S`.
///
/// # Example
/// ```
/// use propack_simcore::{Sim, SimTime};
///
/// let mut sim = Sim::new(0u32);
/// sim.schedule_in(5.0, |s| {
///     *s.state_mut() += 1;
///     // Events can schedule follow-up events.
///     s.schedule_in(5.0, |s| *s.state_mut() += 10);
/// });
/// sim.run();
/// assert_eq!(*sim.state(), 11);
/// assert_eq!(sim.now(), SimTime::from_secs(10.0));
/// ```
pub struct Sim<S> {
    now: SimTime,
    seq: u64,
    fired: u64,
    queue: BinaryHeap<Reverse<HeapEntry>>,
    closures: Pool<EventFn<S>>,
    /// `Pool<S::Event>` when `S: EventState` and a typed event has been
    /// scheduled; type-erased so `Sim<S>` stays usable (and object-code
    /// identical) for plain states with no event vocabulary.
    typed: Option<Box<dyn Any + Send>>,
    /// Monomorphized dispatcher for the typed pool, captured at first
    /// typed-event scheduling (where `S: EventState` is in scope).
    dispatch: Option<fn(&mut Sim<S>, u32)>,
    state: S,
}

impl<S> Sim<S> {
    /// Create a simulation at t = 0 around the given state.
    pub fn new(state: S) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            fired: 0,
            queue: BinaryHeap::new(),
            closures: Pool::new(),
            typed: None,
            dispatch: None,
            state,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the user state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Mutable access to the user state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consume the simulation, returning the final state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events currently pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    fn assert_not_past(&self, at: SimTime) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {} < now {}",
            at,
            self.now
        );
    }

    /// Schedule `event` to fire at the absolute instant `at`.
    ///
    /// Panics if `at` is in the simulated past — a past-scheduled event is
    /// always a logic bug in the model, never something to silently clamp.
    ///
    /// This is the closure fallback path (one `Box` per event); hot
    /// per-instance pipelines should define an [`EventState`] vocabulary
    /// and use [`Sim::schedule_event`] instead.
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut Sim<S>) + Send + 'static,
    {
        self.assert_not_past(at);
        let seq = self.next_seq();
        let slot = Slot::Closure(self.closures.insert(Box::new(event)));
        self.queue.push(Reverse(HeapEntry { at, seq, slot }));
    }

    /// Schedule `event` to fire `delay` seconds from now.
    pub fn schedule_in<F>(&mut self, delay: f64, event: F)
    where
        F: FnOnce(&mut Sim<S>) + Send + 'static,
    {
        assert!(delay >= 0.0, "negative delay {delay}");
        self.schedule_at(self.now + delay, event);
    }

    /// Fire the next pending event, if any; returns whether one fired.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(Reverse(entry)) => {
                debug_assert!(entry.at >= self.now, "event heap ordering violated");
                self.now = entry.at;
                self.fired += 1;
                match entry.slot {
                    Slot::Closure(index) => {
                        if let Some(run) = self.closures.take(index) {
                            run(self);
                        }
                    }
                    Slot::Typed(index) => {
                        if let Some(dispatch) = self.dispatch {
                            dispatch(self, index);
                        }
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Run until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the queue drains or the clock passes `deadline` (events at
    /// exactly `deadline` still fire). Returns whether the queue drained.
    pub fn run_until(&mut self, deadline: SimTime) -> bool {
        loop {
            match self.queue.peek() {
                None => return true,
                Some(Reverse(entry)) if entry.at > deadline => return false,
                Some(_) => {
                    self.step();
                }
            }
        }
    }
}

impl<S: EventState> Sim<S> {
    /// The typed pool, created on first use. The downcast cannot fail:
    /// `S: EventState` fixes exactly one `S::Event` per simulation, and the
    /// pool is (re)installed with that type right here.
    fn typed_pool(&mut self) -> &mut Pool<S::Event> {
        let installed = self
            .typed
            .as_deref()
            .is_some_and(|pool| pool.is::<Pool<S::Event>>());
        if !installed {
            self.typed = Some(Box::new(Pool::<S::Event>::new()));
            self.dispatch = Some(dispatch_typed::<S>);
        }
        let Some(pool) = self
            .typed
            .as_mut()
            .and_then(|pool| pool.downcast_mut::<Pool<S::Event>>())
        else {
            unreachable!("typed event pool was just installed with this exact type")
        };
        pool
    }

    /// Schedule a typed event at the absolute instant `at` — the
    /// allocation-free fast path. Panics if `at` is in the simulated past,
    /// exactly like [`Sim::schedule_at`].
    pub fn schedule_event(&mut self, at: SimTime, event: S::Event) {
        self.assert_not_past(at);
        let seq = self.next_seq();
        let slot = Slot::Typed(self.typed_pool().insert(event));
        self.queue.push(Reverse(HeapEntry { at, seq, slot }));
    }

    /// Schedule a typed event `delay` seconds from now.
    pub fn schedule_event_in(&mut self, delay: f64, event: S::Event) {
        assert!(delay >= 0.0, "negative delay {delay}");
        self.schedule_event(self.now + delay, event);
    }

    /// Enqueue a batch of typed events at the same instant in one call —
    /// one heap `extend` instead of per-event pushes. Events fire in
    /// iteration order (they receive consecutive sequence numbers), so a
    /// burst's C instance-start events keep their instance order.
    pub fn schedule_batch<I>(&mut self, at: SimTime, events: I)
    where
        I: IntoIterator<Item = S::Event>,
    {
        self.assert_not_past(at);
        let events = events.into_iter();
        let (lower, _) = events.size_hint();
        self.queue.reserve(lower);
        // Collect pool insertions first: the pool borrow and the queue
        // borrow are disjoint fields, but the iterator may be arbitrary
        // user code, so keep the two phases separated per item.
        let mut entries: Vec<HeapEntry> = Vec::with_capacity(lower);
        {
            let base_seq = self.seq;
            let pool = {
                // Touch the pool once so it exists before the loop.
                let _ = self.typed_pool();
                // Reborrow without re-checking the downcast per item.
                let Some(pool) = self
                    .typed
                    .as_mut()
                    .and_then(|pool| pool.downcast_mut::<Pool<S::Event>>())
                else {
                    unreachable!("typed event pool was just installed with this exact type")
                };
                pool
            };
            for (offset, event) in events.enumerate() {
                let slot = Slot::Typed(pool.insert(event));
                entries.push(HeapEntry {
                    at,
                    seq: base_seq + offset as u64,
                    slot,
                });
            }
        }
        self.seq += entries.len() as u64;
        self.queue.extend(entries.into_iter().map(Reverse));
    }
}

/// Take the event out of the pool, then hand it to `S::handle`. Stored as a
/// plain fn pointer in `Sim` so `step` needs no `S: EventState` bound.
fn dispatch_typed<S: EventState>(sim: &mut Sim<S>, slot: u32) {
    let event = sim
        .typed
        .as_mut()
        .and_then(|pool| pool.downcast_mut::<Pool<S::Event>>())
        .and_then(|pool| pool.take(slot));
    if let Some(event) = event {
        S::handle(sim, event);
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for Sim<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("fired", &self.fired)
            .field("state", &self.state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_in(3.0, |s| s.state_mut().push(3));
        sim.schedule_in(1.0, |s| s.state_mut().push(1));
        sim.schedule_in(2.0, |s| s.state_mut().push(2));
        sim.run();
        assert_eq!(sim.state(), &[1, 2, 3]);
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        for i in 0..100 {
            sim.schedule_at(SimTime::from_secs(7.0), move |s| s.state_mut().push(i));
        }
        sim.run();
        let want: Vec<u32> = (0..100).collect();
        assert_eq!(sim.state(), &want);
    }

    #[test]
    fn events_can_cascade() {
        let mut sim = Sim::new(0u64);
        fn tick(s: &mut Sim<u64>) {
            *s.state_mut() += 1;
            if *s.state() < 10 {
                s.schedule_in(1.0, tick);
            }
        }
        sim.schedule_in(1.0, tick);
        sim.run();
        assert_eq!(*sim.state(), 10);
        assert_eq!(sim.now(), SimTime::from_secs(10.0));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new(0u32);
        for i in 1..=10 {
            sim.schedule_at(SimTime::from_secs(i as f64), |s| *s.state_mut() += 1);
        }
        let drained = sim.run_until(SimTime::from_secs(5.0));
        assert!(!drained);
        assert_eq!(*sim.state(), 5);
        assert_eq!(sim.events_pending(), 5);
        assert!(sim.run_until(SimTime::from_secs(100.0)));
        assert_eq!(*sim.state(), 10);
    }

    #[test]
    fn zero_delay_fires_after_current_event() {
        let mut sim = Sim::new(Vec::<&'static str>::new());
        sim.schedule_in(1.0, |s| {
            s.state_mut().push("a");
            s.schedule_in(0.0, |s| s.state_mut().push("c"));
            s.state_mut().push("b");
        });
        sim.run();
        assert_eq!(sim.state(), &["a", "b", "c"]);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new(());
        sim.schedule_in(5.0, |s| {
            s.schedule_at(SimTime::from_secs(1.0), |_| {});
        });
        sim.run();
    }

    #[test]
    fn clock_monotone_non_decreasing() {
        let mut sim = Sim::new(Vec::<f64>::new());
        // Deterministic but shuffled delays.
        for i in 0..50u64 {
            let d = ((i * 7919) % 97) as f64 * 0.5;
            sim.schedule_in(d, move |s| {
                let now = s.now().as_secs();
                s.state_mut().push(now);
            });
        }
        sim.run();
        for w in sim.state().windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    // ---- typed-event path -------------------------------------------------

    struct Log {
        seen: Vec<u32>,
    }

    enum LogEv {
        Push(u32),
        PushThenChain(u32),
    }

    impl EventState for Log {
        type Event = LogEv;
        fn handle(sim: &mut Sim<Self>, ev: LogEv) {
            match ev {
                LogEv::Push(v) => sim.state_mut().seen.push(v),
                LogEv::PushThenChain(v) => {
                    sim.state_mut().seen.push(v);
                    if v < 5 {
                        sim.schedule_event_in(1.0, LogEv::PushThenChain(v + 1));
                    }
                }
            }
        }
    }

    fn log_sim() -> Sim<Log> {
        Sim::new(Log { seen: Vec::new() })
    }

    #[test]
    fn typed_events_fire_in_time_then_seq_order() {
        let mut sim = log_sim();
        sim.schedule_event(SimTime::from_secs(2.0), LogEv::Push(2));
        sim.schedule_event(SimTime::from_secs(1.0), LogEv::Push(1));
        sim.schedule_event(SimTime::from_secs(1.0), LogEv::Push(11));
        sim.run();
        assert_eq!(sim.state().seen, &[1, 11, 2]);
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn typed_and_closure_events_share_one_tiebreak_sequence() {
        // Interleave the two kinds at the same timestamp: firing order must
        // equal scheduling order regardless of kind.
        let mut sim = log_sim();
        let t = SimTime::from_secs(3.0);
        sim.schedule_event(t, LogEv::Push(0));
        sim.schedule_at(t, |s| s.state_mut().seen.push(1));
        sim.schedule_event(t, LogEv::Push(2));
        sim.schedule_at(t, |s| s.state_mut().seen.push(3));
        sim.run();
        assert_eq!(sim.state().seen, &[0, 1, 2, 3]);
    }

    #[test]
    fn typed_events_can_cascade() {
        let mut sim = log_sim();
        sim.schedule_event_in(1.0, LogEv::PushThenChain(1));
        sim.run();
        assert_eq!(sim.state().seen, &[1, 2, 3, 4, 5]);
        assert_eq!(sim.now(), SimTime::from_secs(5.0));
    }

    #[test]
    fn schedule_batch_preserves_iteration_order() {
        let mut sim = log_sim();
        sim.schedule_batch(SimTime::ZERO, (0..500).map(LogEv::Push));
        assert_eq!(sim.events_pending(), 500);
        sim.run();
        let want: Vec<u32> = (0..500).collect();
        assert_eq!(sim.state().seen, want);
    }

    #[test]
    fn batch_then_singles_keep_global_order() {
        let mut sim = log_sim();
        sim.schedule_batch(SimTime::from_secs(1.0), (0..3).map(LogEv::Push));
        sim.schedule_event(SimTime::from_secs(1.0), LogEv::Push(3));
        sim.schedule_at(SimTime::from_secs(1.0), |s| s.state_mut().seen.push(4));
        sim.run();
        assert_eq!(sim.state().seen, &[0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn typed_scheduling_in_the_past_panics() {
        let mut sim = log_sim();
        sim.schedule_event(SimTime::from_secs(5.0), LogEv::Push(0));
        sim.run();
        sim.schedule_event(SimTime::from_secs(1.0), LogEv::Push(1));
    }

    #[test]
    fn pools_recycle_slots_in_steady_state() {
        // A chain of 1000 sequential typed events must not grow the pool
        // beyond the peak number of *simultaneously pending* events (1).
        let mut sim = log_sim();
        sim.schedule_event_in(1.0, LogEv::PushThenChain(1));
        sim.run();
        assert_eq!(sim.typed_pool().capacity(), 1);

        // Same for the closure pool.
        let mut sim = Sim::new(0u64);
        fn tick(s: &mut Sim<u64>) {
            *s.state_mut() += 1;
            if *s.state() < 1000 {
                s.schedule_in(1.0, tick);
            }
        }
        sim.schedule_in(1.0, tick);
        sim.run();
        assert_eq!(sim.closures.capacity(), 1);
        assert_eq!(*sim.state(), 1000);
    }

    #[test]
    fn mixed_kind_runs_drain_completely() {
        let mut sim = log_sim();
        for i in 0..64u32 {
            let d = f64::from((i * 31) % 17);
            if i % 2 == 0 {
                sim.schedule_in(d, move |s| s.state_mut().seen.push(i));
            } else {
                sim.schedule_event_in(d, LogEv::Push(i));
            }
        }
        sim.run();
        assert_eq!(sim.state().seen.len(), 64);
        assert_eq!(sim.events_pending(), 0);
        assert_eq!(sim.events_fired(), 64);
    }
}
