//! Real-thread packed-function executor.
//!
//! §2.6 of the paper describes how packing is *practically realized*:
//! packed functions run as software threads inside one function instance,
//! sharing the instance's 6 CPU cores and 10 GB of memory (with a no-GIL
//! Python runtime; in Rust, plain OS threads already give that). This crate
//! is the host-side equivalent: it executes real workload kernels
//! (`propack-workloads`) as threads under a **core-limited** scheduler, so
//! examples and tests can observe *genuine* packing interference on real
//! hardware rather than simulated interference.
//!
//! Components:
//! * [`semaphore::Semaphore`] — a counting semaphore (parking_lot mutex +
//!   condvar) that models the instance's vCPU quota;
//! * [`PackedExecutor`] — runs a pack of functions on scoped threads,
//!   gating compute slices through the semaphore, and reports per-function
//!   wall times;
//! * [`measure_interference`] — the host-side analogue of ProPack's
//!   profiling phase: measure mean execution time across packing degrees.

pub mod semaphore;

use propack_workloads::{WorkOutput, Workload};
use semaphore::Semaphore;
use std::time::{Duration, Instant};

pub use semaphore::SemaphoreGuard;

/// Result of executing one packed instance on real threads.
#[derive(Debug, Clone)]
pub struct PackedRun {
    /// Packing degree (number of functions co-executed).
    pub packing_degree: u32,
    /// Wall-clock duration of the whole pack (seconds).
    pub wall_secs: f64,
    /// Per-function wall-clock durations (seconds), in function order.
    pub function_secs: Vec<f64>,
    /// Per-function kernel outputs, in function order.
    pub outputs: Vec<WorkOutput>,
}

impl PackedRun {
    /// Mean per-function duration.
    pub fn mean_function_secs(&self) -> f64 {
        if self.function_secs.is_empty() {
            return 0.0;
        }
        self.function_secs.iter().sum::<f64>() / self.function_secs.len() as f64
    }
}

/// Executes packs of workload functions on real OS threads with a core
/// quota, mirroring a 6-vCPU serverless instance.
#[derive(Debug, Clone)]
pub struct PackedExecutor {
    cores: usize,
}

impl PackedExecutor {
    /// An executor with an explicit core quota.
    ///
    /// Panics if `cores == 0`.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "an instance needs at least one core");
        PackedExecutor { cores }
    }

    /// An executor shaped like the paper's Lambda instances (6 vCPUs),
    /// clamped to the host's available parallelism.
    pub fn lambda_like() -> Self {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        PackedExecutor::new(host.min(6))
    }

    /// The core quota.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Run `packing_degree` copies of `workload` concurrently, each with a
    /// distinct input seed (`base_seed + index`), gated by the core quota.
    ///
    /// Every function runs on its own thread (that's how §2.6 packs them);
    /// the semaphore makes at most `cores` of them runnable at a time,
    /// which is what produces real time-slicing interference once
    /// `packing_degree > cores`.
    pub fn run_pack<W: Workload + ?Sized>(
        &self,
        workload: &W,
        packing_degree: u32,
        base_seed: u64,
    ) -> PackedRun {
        assert!(packing_degree >= 1);
        let sem = Semaphore::new(self.cores);
        let start = Instant::now();
        let mut slots: Vec<Option<(f64, WorkOutput)>> = vec![None; packing_degree as usize];

        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(packing_degree as usize);
            for i in 0..packing_degree as u64 {
                let sem = &sem;
                let handle = scope.spawn(move |_| {
                    let t0 = Instant::now();
                    let _guard = sem.acquire();
                    let out = workload.run_once(base_seed.wrapping_add(i));
                    (t0.elapsed().as_secs_f64(), out)
                });
                handles.push(handle);
            }
            for (slot, handle) in slots.iter_mut().zip(handles) {
                *slot = Some(handle.join().expect("packed function panicked"));
            }
        })
        .expect("executor scope panicked");

        let wall_secs = start.elapsed().as_secs_f64();
        let (function_secs, outputs) = slots.into_iter().map(|s| s.expect("joined")).unzip();
        PackedRun {
            packing_degree,
            wall_secs,
            function_secs,
            outputs,
        }
    }
}

/// One measured point of the host-side interference curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredInterference {
    /// Packing degree measured.
    pub packing_degree: u32,
    /// Mean per-function wall time (seconds).
    pub mean_secs: f64,
}

/// The host-side analogue of ProPack's §2.1 profiling: measure the mean
/// function time at each requested packing degree (`repeats` packs per
/// degree, averaged).
pub fn measure_interference<W: Workload + ?Sized>(
    executor: &PackedExecutor,
    workload: &W,
    degrees: &[u32],
    repeats: u32,
    base_seed: u64,
) -> Vec<MeasuredInterference> {
    degrees
        .iter()
        .map(|&p| {
            let mut total = 0.0;
            let mut n = 0usize;
            for r in 0..repeats.max(1) {
                let run = executor.run_pack(workload, p, base_seed ^ ((r as u64) << 32));
                total += run.function_secs.iter().sum::<f64>();
                n += run.function_secs.len();
            }
            MeasuredInterference {
                packing_degree: p,
                mean_secs: total / n as f64,
            }
        })
        .collect()
}

/// Busy-spin for roughly the given duration (test helper workload body).
#[doc(hidden)]
pub fn spin_for(d: Duration) {
    let t0 = Instant::now();
    let mut x = 0u64;
    while t0.elapsed() < d {
        // Trivial ALU work the optimizer cannot elide (x escapes below).
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        std::hint::black_box(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_workloads::{smith_waterman::SmithWaterman, sort::MapReduceSort, WorkProfile};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A tiny synthetic workload that spins for a fixed slice and tracks
    /// its own concurrency.
    struct Spinner {
        concurrent: Arc<AtomicUsize>,
        max_seen: Arc<AtomicUsize>,
    }

    impl propack_workloads::Workload for Spinner {
        fn name(&self) -> &'static str {
            "spinner"
        }
        fn profile(&self) -> WorkProfile {
            WorkProfile::synthetic("spinner", 0.1, 1.0)
        }
        fn run_once(&self, seed: u64) -> WorkOutput {
            let now = self.concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            self.max_seen.fetch_max(now, Ordering::SeqCst);
            spin_for(Duration::from_millis(15));
            self.concurrent.fetch_sub(1, Ordering::SeqCst);
            WorkOutput {
                checksum: seed,
                work_units: 1,
            }
        }
    }

    fn spinner() -> Spinner {
        Spinner {
            concurrent: Arc::new(AtomicUsize::new(0)),
            max_seen: Arc::new(AtomicUsize::new(0)),
        }
    }

    #[test]
    fn core_quota_limits_concurrency() {
        let s = spinner();
        let ex = PackedExecutor::new(2);
        ex.run_pack(&s, 8, 1);
        let max = s.max_seen.load(Ordering::SeqCst);
        assert!(max <= 2, "semaphore leaked: saw {max} concurrent");
        assert!(max >= 1);
    }

    #[test]
    fn all_functions_run_with_distinct_seeds() {
        let s = spinner();
        let ex = PackedExecutor::new(4);
        let run = ex.run_pack(&s, 6, 100);
        assert_eq!(run.outputs.len(), 6);
        let mut seeds: Vec<u64> = run.outputs.iter().map(|o| o.checksum).collect();
        seeds.sort_unstable();
        assert_eq!(seeds, vec![100, 101, 102, 103, 104, 105]);
    }

    #[test]
    fn packed_results_match_isolated_results() {
        // Correctness under packing: co-running threads must compute the
        // same checksums as isolated runs (the whole point of the packing
        // realization being transparent to the application).
        let w = MapReduceSort {
            records: 5_000,
            partitions: 4,
        };
        let ex = PackedExecutor::new(4);
        let packed = ex.run_pack(&w, 6, 42);
        for (i, out) in packed.outputs.iter().enumerate() {
            let solo = propack_workloads::Workload::run_once(&w, 42 + i as u64);
            assert_eq!(*out, solo, "function {i} diverged under packing");
        }
    }

    #[test]
    fn oversubscription_stretches_wall_time() {
        // Real interference: with a 2-core quota, an 8-pack of CPU-bound
        // functions must take materially longer end-to-end than a 2-pack
        // (ideally ~4×: four admission waves instead of one). The kernel
        // must be large enough — milliseconds per function — that core
        // contention dominates scheduler noise even when other test
        // binaries share the machine.
        let w = SmithWaterman {
            query_len: 220,
            db_sequences: 10,
            db_len: 320,
        };
        let ex = PackedExecutor::new(2);
        let small = ex.run_pack(&w, 2, 7);
        let large = ex.run_pack(&w, 8, 7);
        assert!(
            large.wall_secs > small.wall_secs * 1.5,
            "no interference observed: {} vs {}",
            small.wall_secs,
            large.wall_secs
        );
    }

    #[test]
    fn measure_interference_shapes() {
        // Kernel must be long enough (milliseconds) that core contention,
        // not thread-spawn overhead, dominates the measurement.
        let w = SmithWaterman {
            query_len: 200,
            db_sequences: 10,
            db_len: 300,
        };
        let ex = PackedExecutor::new(2);
        let curve = measure_interference(&ex, &w, &[1, 8], 3, 3);
        assert_eq!(curve.len(), 2);
        // Mean function time grows once the pack oversubscribes the cores:
        // with 8 functions on 2 cores, later-admitted functions' wall time
        // includes queueing for a core slot.
        assert!(
            curve[1].mean_secs > 1.5 * curve[0].mean_secs,
            "flat curve: {curve:?}"
        );
    }

    #[test]
    fn mean_function_secs() {
        let run = PackedRun {
            packing_degree: 2,
            wall_secs: 3.0,
            function_secs: vec![1.0, 3.0],
            outputs: vec![],
        };
        assert_eq!(run.mean_function_secs(), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = PackedExecutor::new(0);
    }
}
