//! The combined packing model: Eqs. 3 and 4 of the paper.
//!
//! [`PackingModel`] joins the fitted interference model (Eq. 1), the fitted
//! scaling model (Eq. 2), and the platform's price sheet into closed-form
//! predictors of **service time** and **expense** at any packing degree —
//! which is what lets ProPack pick the optimal degree *analytically*,
//! without running the application at every degree or at high concurrency
//! (§2.2: "without needing to run the application at every packing degree
//! or at high concurrency levels").

use crate::interference::InterferenceModel;
use crate::scaling::ScalingModel;
use propack_platform::billing::PACKED_EGRESS_RESIDUAL;
use propack_platform::profile::PriceSheet;
use propack_platform::WorkProfile;
use propack_stats::percentile::Percentile;
use serde::{Deserialize, Serialize};

/// Price-sheet constants folded into per-instance / per-function terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostFactors {
    /// `R`: USD per second of one executing instance (instances are
    /// configured at the platform's maximum memory, §3, so `R` is constant
    /// across packing degrees — the assumption behind Eq. 4).
    pub usd_per_instance_sec: f64,
    /// Invocation fee per instance.
    pub usd_per_instance: f64,
    /// Storage fees per function (independent of packing).
    pub usd_per_function_storage: f64,
    /// Network fee per function when unpacked.
    pub usd_per_function_network: f64,
    /// Network fee per function when packed (most traffic stays local).
    pub usd_per_function_network_packed: f64,
}

impl CostFactors {
    /// Derive the factors from a platform price sheet and a work profile.
    pub fn derive(prices: &PriceSheet, work: &WorkProfile, billed_mem_gb: f64) -> Self {
        CostFactors {
            usd_per_instance_sec: billed_mem_gb * prices.usd_per_gb_sec,
            usd_per_instance: prices.usd_per_request,
            usd_per_function_storage: work.storage_requests as f64 * prices.usd_per_storage_request
                + work.storage_gb * prices.usd_per_storage_gb,
            usd_per_function_network: work.network_gb * prices.usd_per_network_gb,
            usd_per_function_network_packed: work.network_gb
                * PACKED_EGRESS_RESIDUAL
                * prices.usd_per_network_gb,
        }
    }
}

/// Model prediction at one packing degree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreePrediction {
    /// The packing degree.
    pub packing_degree: u32,
    /// Predicted instance execution time (Eq. 1).
    pub exec_secs: f64,
    /// Predicted service time (Eq. 3) at the requested figure of merit.
    pub service_secs: f64,
    /// Predicted expense (Eq. 4 + request/storage/network terms).
    pub expense_usd: f64,
}

/// The complete analytical model for one application on one platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackingModel {
    /// Fitted Eq. 1.
    pub interference: InterferenceModel,
    /// Fitted Eq. 2 (application-independent, reused across apps).
    pub scaling: ScalingModel,
    /// Billing constants.
    pub cost: CostFactors,
    /// Maximum feasible packing degree (memory cap, possibly tightened by
    /// the execution-time cap discovered during profiling — §2.1's QoS
    /// remark).
    pub p_max: u32,
}

impl PackingModel {
    /// Effective instance count for original concurrency `c` at degree `p`:
    /// `C_eff = ceil(C / P)`.
    pub fn instances(&self, c: u32, p: u32) -> u32 {
        c.div_ceil(p.max(1))
    }

    /// Eq. 1: predicted execution time at degree `p`.
    pub fn exec_secs(&self, p: u32) -> f64 {
        self.interference.exec_secs(p)
    }

    /// Eq. 3's argument: predicted service time at concurrency `c`, degree
    /// `p`, for the given figure of merit (total / tail / median — §3).
    ///
    /// When `p ∤ c` the last instance holds only `c mod p` functions and
    /// therefore runs *faster* than the full ones (less interference), so
    /// the execution term is governed by the slowest instance class: a full
    /// instance whenever one exists, the partial instance only when the
    /// whole burst fits in it (`c < p`).
    pub fn service_secs(&self, c: u32, p: u32, metric: Percentile) -> f64 {
        let c_eff = self.instances(c, p) as f64;
        let slowest = p.max(1).min(c.max(1));
        self.exec_secs(slowest) + self.scaling.scaling_secs_quantile(c_eff, metric.quantile())
    }

    /// Eq. 4's argument (extended with the request, storage, and network
    /// terms the real bill contains): predicted expense at concurrency `c`
    /// and degree `p`.
    ///
    /// Eq. 4 bills all `⌈C/P⌉` instances at the full-degree execution time,
    /// over-approximating whenever `p ∤ c`: the last instance holds only
    /// `c mod p` functions, suffers their (smaller) interference, and bills
    /// for that shorter run. This predictor bills the partial instance at
    /// its actual occupancy, matching the simulator's per-instance bill.
    pub fn expense_usd(&self, c: u32, p: u32) -> f64 {
        let p = p.max(1);
        let full = (c / p) as f64;
        let rem = c % p;
        let functions = c as f64;
        let network = if p > 1 {
            self.cost.usd_per_function_network_packed
        } else {
            self.cost.usd_per_function_network
        };
        let mut compute = full * self.exec_secs(p) * self.cost.usd_per_instance_sec;
        if rem > 0 {
            compute += self.exec_secs(rem) * self.cost.usd_per_instance_sec;
        }
        compute
            + self.instances(c, p) as f64 * self.cost.usd_per_instance
            + functions * (self.cost.usd_per_function_storage + network)
    }

    /// Predictions for every feasible degree `1..=p_max`.
    pub fn sweep(&self, c: u32, metric: Percentile) -> Vec<DegreePrediction> {
        (1..=self.p_max.max(1))
            .map(|p| DegreePrediction {
                packing_degree: p,
                exec_secs: self.exec_secs(p),
                service_secs: self.service_secs(c, p, metric),
                expense_usd: self.expense_usd(c, p),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::profile::PlatformProfile;

    /// A hand-built model with the paper's calibration magnitudes.
    pub(crate) fn paper_like_model() -> PackingModel {
        PackingModel {
            interference: InterferenceModel {
                base: 100.0 / (0.05f64).exp(), // ET(1) = 100 s
                rate: 0.05,
                mem_gb: 0.25,
                rmse: 0.0,
            },
            scaling: ScalingModel {
                beta1: 3.0e-5,
                beta2: 0.045,
                beta3: 2.0,
                r_squared: 1.0,
            },
            cost: CostFactors::derive(
                &PlatformProfile::aws_lambda().prices,
                &WorkProfile::synthetic("w", 0.25, 100.0),
                10.0,
            ),
            p_max: 40,
        }
    }

    #[test]
    fn instances_is_ceiling_division() {
        let m = paper_like_model();
        assert_eq!(m.instances(1000, 1), 1000);
        assert_eq!(m.instances(1000, 7), 143);
        assert_eq!(m.instances(1000, 40), 25);
    }

    #[test]
    fn service_time_tradeoff_exists() {
        // At C = 5000, degree 1 pays huge scaling; a packed degree is far
        // better; the maximum degree over-packs (execution blows up
        // relative to the scaling saved).
        let m = paper_like_model();
        let s1 = m.service_secs(5000, 1, Percentile::Total);
        let s10 = m.service_secs(5000, 10, Percentile::Total);
        assert!(
            s10 < 0.4 * s1,
            "packing must cut service time: {s1} → {s10}"
        );
        // And the curve turns back up by the memory cap.
        let s40 = m.service_secs(5000, 40, Percentile::Total);
        assert!(s40 > s10, "over-packing must cost: {s10} vs {s40}");
    }

    #[test]
    fn expense_nonmonotone_in_degree() {
        // Fig. 7: expense falls, bottoms out at P ≈ 1/rate = 20, then
        // rises again.
        let m = paper_like_model();
        let e1 = m.expense_usd(1000, 1);
        let e20 = m.expense_usd(1000, 20);
        let e40 = m.expense_usd(1000, 40);
        assert!(e20 < e1);
        assert!(e40 > e20, "expense must turn back up: {e20} vs {e40}");
    }

    #[test]
    fn remainder_instance_billed_at_actual_occupancy() {
        // C = 10, P = 4 → two full instances (4 functions each) and one
        // partial instance holding 10 mod 4 = 2. The partial instance runs
        // and bills at the 2-function interference level, not the
        // 4-function one Eq. 4 would over-approximate with.
        let m = paper_like_model();
        let r = m.cost.usd_per_instance_sec;
        let want = (2.0 * m.exec_secs(4) + m.exec_secs(2)) * r
            + 3.0 * m.cost.usd_per_instance
            + 10.0 * (m.cost.usd_per_function_storage + m.cost.usd_per_function_network_packed);
        let got = m.expense_usd(10, 4);
        assert!(
            (got - want).abs() < 1e-12,
            "expense C=10 P=4: got {got}, want {want}"
        );
        // The old all-full-instances bill is strictly larger.
        let over = 3.0 * m.exec_secs(4) * r
            + 3.0 * m.cost.usd_per_instance
            + 10.0 * (m.cost.usd_per_function_storage + m.cost.usd_per_function_network_packed);
        assert!(got < over);
        // Even division has no partial instance and is unchanged.
        let even = m.expense_usd(8, 4);
        let even_want = 2.0 * m.exec_secs(4) * r
            + 2.0 * m.cost.usd_per_instance
            + 8.0 * (m.cost.usd_per_function_storage + m.cost.usd_per_function_network_packed);
        assert!((even - even_want).abs() < 1e-12);
    }

    #[test]
    fn service_time_tracks_slowest_instance_class() {
        let m = paper_like_model();
        // A full instance exists (C = 10 > P = 4): the slower full
        // instances set the makespan, so the partial one changes nothing.
        assert_eq!(
            m.service_secs(10, 4, Percentile::Total),
            m.service_secs(8, 4, Percentile::Total) - m.scaling.scaling_secs_quantile(2.0, 1.0)
                + m.scaling.scaling_secs_quantile(3.0, 1.0)
        );
        // The whole burst fits in one partial instance (C = 3 < P = 8):
        // only 3 functions interfere.
        let s = m.service_secs(3, 8, Percentile::Total);
        let want = m.exec_secs(3) + m.scaling.scaling_secs_quantile(1.0, 1.0);
        assert!((s - want).abs() < 1e-12);
        assert!(s < m.exec_secs(8) + m.scaling.scaling_secs_quantile(1.0, 1.0));
    }

    #[test]
    fn expense_ignores_scaling_time() {
        // Two models that differ only in scaling coefficients bill
        // identically — queue wait is never billed (§2.3).
        let mut a = paper_like_model();
        let mut b = paper_like_model();
        a.scaling.beta1 = 1e-3;
        b.scaling.beta1 = 1e-9;
        assert_eq!(a.expense_usd(2000, 5), b.expense_usd(2000, 5));
    }

    #[test]
    fn metric_ordering() {
        let m = paper_like_model();
        let total = m.service_secs(3000, 4, Percentile::Total);
        let tail = m.service_secs(3000, 4, Percentile::Tail95);
        let med = m.service_secs(3000, 4, Percentile::Median);
        assert!(total >= tail && tail >= med);
    }

    #[test]
    fn sweep_covers_all_degrees() {
        let m = paper_like_model();
        let sweep = m.sweep(1000, Percentile::Total);
        assert_eq!(sweep.len(), 40);
        assert_eq!(sweep[0].packing_degree, 1);
        assert_eq!(sweep[39].packing_degree, 40);
    }

    #[test]
    fn cost_factors_reflect_platform_differences() {
        let w = WorkProfile::synthetic("w", 0.25, 100.0).with_network(0.05);
        let aws = CostFactors::derive(&PlatformProfile::aws_lambda().prices, &w, 10.0);
        let gcf = CostFactors::derive(&PlatformProfile::google_cloud_functions().prices, &w, 8.0);
        assert_eq!(aws.usd_per_function_network, 0.0);
        assert!(gcf.usd_per_function_network > 0.0);
        assert!(gcf.usd_per_function_network_packed < gcf.usd_per_function_network);
    }
}
