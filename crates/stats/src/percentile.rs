//! Percentile and quantile helpers.
//!
//! The paper's figures of merit (§3): *"total, tail, and median service
//! times refer to the time required till the end of execution of all, first
//! 95 % and first 50 % concurrent function instances, respectively."*
//! [`Percentile`] encodes exactly those three metrics; [`percentile`] is the
//! general linear-interpolated quantile used to compute them from per-
//! instance completion times.

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// The three figures of merit used throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Percentile {
    /// Completion of **all** instances (the 100th percentile).
    Total,
    /// Completion of the first 95 % of instances (tail latency bound).
    Tail95,
    /// Completion of the first 50 % of instances.
    Median,
}

impl Percentile {
    /// The quantile in `[0, 1]` this figure of merit corresponds to.
    pub fn quantile(self) -> f64 {
        match self {
            Percentile::Total => 1.0,
            Percentile::Tail95 => 0.95,
            Percentile::Median => 0.50,
        }
    }

    /// All three figures of merit.
    pub const ALL: [Percentile; 3] = [Percentile::Total, Percentile::Tail95, Percentile::Median];

    /// Display name, as used in figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Percentile::Total => "total",
            Percentile::Tail95 => "tail",
            Percentile::Median => "median",
        }
    }
}

/// Linear-interpolated quantile of `values` at `q ∈ [0, 1]`.
///
/// Sorts a copy of the input; O(n log n). `q = 1.0` returns the maximum,
/// `q = 0.0` the minimum.
pub fn percentile(values: &[f64], q: f64) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::Domain("quantile must be in [0, 1]"));
    }
    for (i, &v) in values.iter().enumerate() {
        if !v.is_finite() {
            return Err(StatsError::NonFinite { index: i, value: v });
        }
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok(quantile_sorted(&sorted, q))
}

/// Quantile of an already-sorted slice (ascending); no allocation.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median convenience wrapper.
pub fn median(values: &[f64]) -> Result<f64> {
    percentile(values, 0.5)
}

/// Compute all three paper metrics (total / tail-95 / median) in one pass.
///
/// Returns values in the order of [`Percentile::ALL`].
pub fn service_metrics(completion_times: &[f64]) -> Result<[f64; 3]> {
    if completion_times.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    let mut sorted = completion_times.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok([
        quantile_sorted(&sorted, Percentile::Total.quantile()),
        quantile_sorted(&sorted, Percentile::Tail95.quantile()),
        quantile_sorted(&sorted, Percentile::Median.quantile()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_max_median_is_middle() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 1.0).unwrap(), 5.0);
        assert_eq!(percentile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(median(&v).unwrap(), 3.0);
    }

    #[test]
    fn interpolates_between_points() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 0.25).unwrap(), 2.5);
        assert_eq!(percentile(&v, 0.5).unwrap(), 5.0);
    }

    #[test]
    fn single_element() {
        assert_eq!(percentile(&[42.0], 0.95).unwrap(), 42.0);
    }

    #[test]
    fn empty_rejected() {
        assert!(percentile(&[], 0.5).is_err());
        assert!(service_metrics(&[]).is_err());
    }

    #[test]
    fn out_of_range_q_rejected() {
        assert!(percentile(&[1.0], 1.5).is_err());
        assert!(percentile(&[1.0], -0.1).is_err());
    }

    #[test]
    fn nan_rejected() {
        assert!(percentile(&[1.0, f64::NAN], 0.5).is_err());
    }

    #[test]
    fn metrics_ordering_total_ge_tail_ge_median() {
        let v: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let [total, tail, med] = service_metrics(&v).unwrap();
        assert!(total >= tail && tail >= med);
        assert_eq!(total, 999.0);
        assert!((tail - 949.05).abs() < 1e-9);
        assert!((med - 499.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_enum_quantiles() {
        assert_eq!(Percentile::Total.quantile(), 1.0);
        assert_eq!(Percentile::Tail95.quantile(), 0.95);
        assert_eq!(Percentile::Median.quantile(), 0.5);
        for p in Percentile::ALL {
            assert!(!p.name().is_empty());
        }
    }
}
