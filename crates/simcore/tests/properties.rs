//! Property-based tests for the DES engine and its resources.

use propack_simcore::rng::lanes;
use propack_simcore::{BandwidthPipe, FifoResource, MultiServer, RngStreams, Sim, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events fire in non-decreasing time order for arbitrary schedules,
    /// and equal-time events fire in scheduling order.
    #[test]
    fn event_order_is_total(delays in prop::collection::vec(0.0f64..1e4, 1..200)) {
        // Event closures are `Send`, so the shared log lives in the sim state
        // rather than behind an `Rc`.
        let mut sim = Sim::new(Vec::<(f64, usize)>::new());
        for (i, &d) in delays.iter().enumerate() {
            sim.schedule_in(d, move |s| {
                let now = s.now().as_secs();
                s.state_mut().push((now, i));
            });
        }
        sim.run();
        let log = sim.state();
        prop_assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            prop_assert!(w[1].0 >= w[0].0, "clock went backwards");
            if w[1].0 == w[0].0 {
                prop_assert!(w[1].1 > w[0].1, "tie broken out of scheduling order");
            }
        }
    }

    /// FIFO resource: requests never overlap, never start before arrival,
    /// and busy time equals the sum of services.
    #[test]
    fn fifo_no_overlap(reqs in prop::collection::vec((0.0f64..100.0, 0.0f64..10.0), 1..100)) {
        let mut r = FifoResource::new();
        // Requests must arrive in non-decreasing time for a FIFO queue.
        let mut sorted = reqs.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut prev_end = 0.0f64;
        let mut total = 0.0;
        for &(at, dur) in &sorted {
            let (start, end) = r.request(SimTime::from_secs(at), dur);
            prop_assert!(start.as_secs() >= at - 1e-12);
            prop_assert!(start.as_secs() >= prev_end - 1e-12, "overlap");
            prop_assert!((end - start - dur).abs() < 1e-12);
            prev_end = end.as_secs();
            total += dur;
        }
        prop_assert!((r.busy_seconds() - total).abs() < 1e-9);
    }

    /// MultiServer with k servers never runs more than k requests
    /// concurrently (checked by interval overlap counting).
    #[test]
    fn multiserver_respects_capacity(
        k in 1usize..8,
        durs in prop::collection::vec(0.1f64..5.0, 1..60),
    ) {
        let mut m = MultiServer::new(k);
        let mut intervals = Vec::new();
        for &d in &durs {
            let (_, s, e) = m.request(SimTime::ZERO, d);
            intervals.push((s.as_secs(), e.as_secs()));
        }
        // At any interval start, count overlapping intervals.
        for &(t, _) in &intervals {
            let overlapping =
                intervals.iter().filter(|&&(s, e)| s <= t + 1e-12 && t < e - 1e-12).count();
            prop_assert!(overlapping <= k, "{overlapping} > {k} concurrent");
        }
    }

    /// BandwidthPipe conserves bytes and serializes: total transfer span is
    /// at least bytes/bandwidth.
    #[test]
    fn pipe_conserves_bytes(
        bw in 1.0f64..1e6,
        sizes in prop::collection::vec(0.0f64..1e6, 1..50),
    ) {
        let mut p = BandwidthPipe::new(bw);
        let mut last_end = SimTime::ZERO;
        for &s in &sizes {
            let (_, end) = p.transfer(SimTime::ZERO, s);
            prop_assert!(end >= last_end);
            last_end = end;
        }
        let total: f64 = sizes.iter().sum();
        prop_assert!((p.bytes_moved() - total).abs() < 1e-6 * (1.0 + total));
        prop_assert!((last_end.as_secs() - total / bw).abs() < 1e-9 * (1.0 + total / bw));
    }

    /// RNG streams: identical (seed, name, index) triples agree; any
    /// differing coordinate diverges.
    #[test]
    fn rng_streams_deterministic(seed in any::<u64>(), idx in 0u64..1000) {
        use rand::Rng;
        let s = RngStreams::new(seed);
        let mut r1 = s.stream_indexed(lanes::EXEC, idx);
        let mut r2 = s.stream_indexed(lanes::EXEC, idx);
        let v1: Vec<u64> = (0..8).map(|_| r1.random()).collect();
        let v2: Vec<u64> = (0..8).map(|_| r2.random()).collect();
        prop_assert_eq!(&v1, &v2);
        let mut r3 = s.stream_indexed(lanes::EXEC, idx.wrapping_add(1));
        let v3: Vec<u64> = (0..8).map(|_| r3.random()).collect();
        prop_assert_ne!(&v1, &v3);
    }

    /// Every (lane, index) pair in a grid over the full registry yields a
    /// pairwise-distinct stream — including `stream(lane)` versus
    /// `stream_indexed(lane, 0)`, the aliasing pair under the pre-v2
    /// derivation where index 0 contributed nothing to the stream hash.
    #[test]
    fn rng_streams_pairwise_distinct_over_lane_grid(seed in any::<u64>()) {
        use rand::Rng;
        let s = RngStreams::new(seed);
        let mut prefixes: Vec<(String, Vec<u64>)> = Vec::new();
        for lane in lanes::ALL {
            // simlint: allow(rng-lane): "iterates the registry itself; every value is a lane const"
            let mut base = s.stream(lane);
            prefixes.push((format!("{lane}"), (0..8).map(|_| base.random()).collect()));
            for idx in [0u64, 1, 2, u64::MAX] {
                // simlint: allow(rng-lane): "iterates the registry itself; every value is a lane const"
                let mut r = s.stream_indexed(lane, idx);
                prefixes.push((format!("{lane}#{idx}"), (0..8).map(|_| r.random()).collect()));
            }
        }
        for i in 0..prefixes.len() {
            for j in (i + 1)..prefixes.len() {
                prop_assert_ne!(
                    &prefixes[i].1,
                    &prefixes[j].1,
                    "streams {} and {} coincide under seed {}",
                    prefixes[i].0,
                    prefixes[j].0,
                    seed
                );
            }
        }
    }

    /// run_until never fires events past the deadline, and a subsequent
    /// full run drains exactly the remainder.
    #[test]
    fn run_until_splits_cleanly(delays in prop::collection::vec(0.0f64..100.0, 1..100), cut in 0.0f64..100.0) {
        let mut sim = Sim::new(0u32);
        for &d in &delays {
            sim.schedule_in(d, |s| *s.state_mut() += 1);
        }
        sim.run_until(SimTime::from_secs(cut));
        let early = delays.iter().filter(|&&d| d <= cut).count() as u32;
        prop_assert_eq!(*sim.state(), early);
        sim.run();
        prop_assert_eq!(*sim.state(), delays.len() as u32);
    }
}
