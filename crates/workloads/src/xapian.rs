//! Xapian: the latency-critical search workload (Fig. 20).
//!
//! The paper's Xapian benchmark is a search engine over Wikipedia pages —
//! *"a typical latency-critical, compute-intensive workload with a strict
//! QoS bound on tail (95th percentile) latency"* (§3, from TailBench). The
//! QoS-aware packing experiment (Fig. 20) chooses ProPack's objective
//! weights `W_S = 0.65 / W_E = 0.35` so the tail service time stays inside
//! the bound.
//!
//! The kernel is a genuine small search engine: a deterministic synthetic
//! "wiki" corpus, an inverted index with per-document term frequencies, and
//! BM25-ranked top-k retrieval.

use crate::{mix64, WorkOutput, Workload};
use propack_platform::{ResourceKind, WorkProfile};
use std::collections::BTreeMap;

/// BM25 parameters (standard defaults).
const BM25_K1: f64 = 1.2;
const BM25_B: f64 = 0.75;

/// Vocabulary size of the synthetic corpus.
const VOCAB: u64 = 4096;

/// A searchable corpus: inverted index over synthetic documents.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// `postings[term] = [(doc_id, term_frequency)]`, sorted by doc id.
    postings: BTreeMap<u32, Vec<(u32, u32)>>,
    /// Per-document lengths (terms).
    doc_lens: Vec<u32>,
    avg_doc_len: f64,
}

impl Corpus {
    /// Build a deterministic corpus of `docs` documents with Zipf-ish term
    /// distribution: low term ids are common, high ids rare — so queries
    /// mix frequent and selective terms like real search traffic.
    pub fn synthetic(seed: u64, docs: usize, terms_per_doc: usize) -> Self {
        let mut postings: BTreeMap<u32, Vec<(u32, u32)>> = BTreeMap::new();
        let mut doc_lens = Vec::with_capacity(docs);
        for d in 0..docs as u32 {
            let mut tf: BTreeMap<u32, u32> = BTreeMap::new();
            for t in 0..terms_per_doc as u64 {
                let h = mix64(seed ^ ((d as u64) << 24) ^ t);
                // Square the uniform draw to skew toward low term ids.
                let u = (h % VOCAB) as f64 / VOCAB as f64;
                let term = ((u * u) * VOCAB as f64) as u32;
                *tf.entry(term).or_insert(0) += 1;
            }
            doc_lens.push(terms_per_doc as u32);
            for (term, freq) in tf {
                postings.entry(term).or_default().push((d, freq));
            }
        }
        for list in postings.values_mut() {
            list.sort_unstable_by_key(|&(d, _)| d);
        }
        let avg_doc_len = terms_per_doc as f64;
        Corpus {
            postings,
            doc_lens,
            avg_doc_len,
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.doc_lens.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.doc_lens.is_empty()
    }

    /// BM25 score of one document for one term.
    fn bm25(&self, term_docs: usize, tf: u32, doc_len: u32) -> f64 {
        let n = self.len() as f64;
        let idf = ((n - term_docs as f64 + 0.5) / (term_docs as f64 + 0.5) + 1.0).ln();
        let tf = tf as f64;
        let norm = BM25_K1 * (1.0 - BM25_B + BM25_B * doc_len as f64 / self.avg_doc_len);
        idf * tf * (BM25_K1 + 1.0) / (tf + norm)
    }

    /// Top-k documents for a multi-term query, BM25-ranked.
    ///
    /// Ties break toward the lower document id (deterministic).
    pub fn search(&self, query: &[u32], k: usize) -> Vec<(u32, f64)> {
        let mut scores: BTreeMap<u32, f64> = BTreeMap::new();
        for &term in query {
            if let Some(list) = self.postings.get(&term) {
                let df = list.len();
                for &(doc, tf) in list {
                    *scores.entry(doc).or_insert(0.0) +=
                        self.bm25(df, tf, self.doc_lens[doc as usize]);
                }
            }
        }
        let mut ranked: Vec<(u32, f64)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}

/// The Xapian workload: one invocation serves a batch of queries against a
/// pre-built index shard.
#[derive(Debug, Clone)]
pub struct Xapian {
    /// Documents in the index shard.
    pub docs: usize,
    /// Terms per document.
    pub terms_per_doc: usize,
    /// Queries served per invocation.
    pub queries: usize,
    /// Terms per query.
    pub query_terms: usize,
    /// Results per query.
    pub top_k: usize,
}

impl Default for Xapian {
    fn default() -> Self {
        Xapian {
            docs: 600,
            terms_per_doc: 80,
            queries: 40,
            query_terms: 3,
            top_k: 10,
        }
    }
}

impl Workload for Xapian {
    fn name(&self) -> &'static str {
        "Xapian"
    }

    fn profile(&self) -> WorkProfile {
        WorkProfile {
            name: "Xapian".to_string(),
            mem_gb: 0.4,              // index shard resident in memory → max degree 25
            base_exec_secs: 50.0,     // latency-critical: shortest requests in the suite
            contention_per_gb: 0.125, // ≈ 0.05 per packing degree
            storage_gb: 0.05,         // index shard fetch
            storage_requests: 2,
            network_gb: 0.01,
            dependency_load_secs: 7.0, // index libraries + shard open on cold start
            resource_kind: ResourceKind::Io, // posting-list walks are index-I/O bound
        }
    }

    fn run_once(&self, input_seed: u64) -> WorkOutput {
        let corpus = Corpus::synthetic(input_seed, self.docs, self.terms_per_doc);
        let mut checksum = 0u64;
        let mut work_units = 0u64;
        for q in 0..self.queries as u64 {
            let query: Vec<u32> = (0..self.query_terms as u64)
                .map(|t| {
                    let u = (mix64(input_seed ^ (q << 20) ^ t) % VOCAB) as f64 / VOCAB as f64;
                    ((u * u) * VOCAB as f64) as u32
                })
                .collect();
            let hits = corpus.search(&query, self.top_k);
            for (rank, (doc, score)) in hits.iter().enumerate() {
                checksum ^= mix64(
                    (*doc as u64) << 32 ^ (score.to_bits() & 0xFFFF_F000) ^ (rank as u64) << 8 ^ q,
                );
            }
            work_units += hits.len() as u64;
        }
        WorkOutput {
            checksum,
            work_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::synthetic(7, 200, 60)
    }

    #[test]
    fn corpus_shape() {
        let c = corpus();
        assert_eq!(c.len(), 200);
        assert!(!c.is_empty());
    }

    #[test]
    fn search_returns_ranked_results() {
        let c = corpus();
        let hits = c.search(&[1, 2, 3], 10);
        assert!(!hits.is_empty());
        assert!(hits.len() <= 10);
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1, "scores must be non-increasing");
        }
    }

    #[test]
    fn search_deterministic() {
        let c = corpus();
        assert_eq!(c.search(&[5, 9], 5), c.search(&[5, 9], 5));
    }

    #[test]
    fn missing_term_returns_empty() {
        let c = corpus();
        // Term beyond the vocabulary never occurs.
        assert!(c.search(&[999_999], 5).is_empty());
    }

    #[test]
    fn rare_terms_score_higher_than_common() {
        // IDF property: a document matching a rare term outranks one
        // matching an equally-frequent common term. Construct directly.
        let c = corpus();
        // Find a common (low id) and a rare (high id) term present in the
        // index.
        let common = (0..50).find(|t| c.postings.contains_key(t)).unwrap();
        let rare = (3000..4096)
            .rev()
            .find(|t| c.postings.contains_key(t))
            .unwrap();
        let df_common = c.postings[&common].len();
        let df_rare = c.postings[&rare].len();
        assert!(
            df_common > df_rare,
            "corpus skew missing: {df_common} vs {df_rare}"
        );
        let s_common = c.bm25(df_common, 1, 60);
        let s_rare = c.bm25(df_rare, 1, 60);
        assert!(s_rare > s_common);
    }

    #[test]
    fn more_matches_score_higher() {
        let c = corpus();
        let hits1 = c.search(&[10], 200);
        let hits2 = c.search(&[10, 10], 200); // doubled term doubles the sum
        if let (Some(a), Some(b)) = (hits1.first(), hits2.first()) {
            assert!(b.1 > a.1);
        }
    }

    #[test]
    fn top_k_truncation() {
        let c = corpus();
        let all = c.search(&[1, 2, 3, 4, 5], usize::MAX);
        let top3 = c.search(&[1, 2, 3, 4, 5], 3);
        assert_eq!(&all[..3.min(all.len())], &top3[..]);
    }

    #[test]
    fn profile_matches_paper_calibration() {
        let p = Xapian::default().profile();
        assert_eq!(p.max_packing_degree(10.0), 25);
        assert!(p.base_exec_secs < 100.0, "latency-critical: short requests");
    }
}
