//! A counting semaphore over parking_lot primitives.
//!
//! Models a serverless instance's vCPU quota: at most `permits` packed
//! functions execute simultaneously; the rest block, exactly like threads
//! waiting for a core. (std has no stable counting semaphore; this one is
//! ~50 lines and fair-enough for the executor's purposes.)

use parking_lot::{Condvar, Mutex};

/// A counting semaphore.
#[derive(Debug)]
pub struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    /// Create a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            available: Condvar::new(),
        }
    }

    /// Block until a permit is available, then take it. The permit is
    /// released when the returned guard drops.
    pub fn acquire(&self) -> SemaphoreGuard<'_> {
        let mut permits = self.permits.lock();
        while *permits == 0 {
            self.available.wait(&mut permits);
        }
        *permits -= 1;
        SemaphoreGuard { sem: self }
    }

    /// Take a permit if one is available right now.
    pub fn try_acquire(&self) -> Option<SemaphoreGuard<'_>> {
        let mut permits = self.permits.lock();
        if *permits == 0 {
            None
        } else {
            *permits -= 1;
            Some(SemaphoreGuard { sem: self })
        }
    }

    /// Current free permits (racy; diagnostics only).
    pub fn available_permits(&self) -> usize {
        *self.permits.lock()
    }

    fn release(&self) {
        let mut permits = self.permits.lock();
        *permits += 1;
        drop(permits);
        self.available.notify_one();
    }
}

/// RAII permit; releases on drop.
#[derive(Debug)]
pub struct SemaphoreGuard<'a> {
    sem: &'a Semaphore,
}

impl Drop for SemaphoreGuard<'_> {
    fn drop(&mut self) {
        self.sem.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn acquire_release_cycle() {
        let sem = Semaphore::new(2);
        let g1 = sem.acquire();
        let g2 = sem.acquire();
        assert_eq!(sem.available_permits(), 0);
        assert!(sem.try_acquire().is_none());
        drop(g1);
        assert_eq!(sem.available_permits(), 1);
        let g3 = sem.try_acquire();
        assert!(g3.is_some());
        drop(g2);
        drop(g3);
        assert_eq!(sem.available_permits(), 2);
    }

    #[test]
    fn blocks_threads_beyond_quota() {
        let sem = Semaphore::new(3);
        let peak = AtomicUsize::new(0);
        let current = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            for _ in 0..12 {
                s.spawn(|_| {
                    let _g = sem.acquire();
                    let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    current.fetch_sub(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert_eq!(sem.available_permits(), 3);
    }

    #[test]
    fn zero_permit_semaphore_only_unblocks_on_release() {
        let sem = Semaphore::new(0);
        assert!(sem.try_acquire().is_none());
        sem.release();
        assert!(sem.try_acquire().is_some());
    }
}
