//! Workflow run specifications and the sweep-facing shape grammar.

use crate::WorkflowRunError;
use propack_model::propack::ProPackConfig;
use propack_orchestrator::{MapPacking, State, Workflow};
use propack_platform::{
    FaultSpec, InterferenceMatrix, KeepAlivePolicy, ResourceKind, RetryPolicy, WarmPoolConfig,
    WorkProfile,
};

/// Whether sibling Map leaves of a `Parallel` node are fused into one
/// heterogeneous co-packed burst.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum CoPack {
    /// Every leaf runs its own homogeneous burst (the orchestrator's
    /// semantics; bit-compatible with [`propack_orchestrator::execute`]).
    #[default]
    Disabled,
    /// Direct Task/Map children of each `Parallel` node share instances:
    /// one [`propack_platform::MixedBurstSpec`] per sibling group, with
    /// this pairwise interference model.
    Siblings(InterferenceMatrix),
}

impl CoPack {
    /// The interference matrix when co-packing is enabled.
    pub fn interference(&self) -> Option<&InterferenceMatrix> {
        match self {
            CoPack::Disabled => None,
            CoPack::Siblings(m) => Some(m),
        }
    }
}

/// Everything needed to replay one workflow: the state tree plus the run
/// environment (seed, faults, retries, keep-alive policy, co-packing).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowSpec {
    /// The workflow to execute.
    pub workflow: Workflow,
    /// Root seed; every leaf burst derives its own stream from it (see
    /// [`crate::engine::leaf_seed`]).
    pub seed: u64,
    /// Fault injection applied to every (non-co-packed) leaf burst.
    pub faults: FaultSpec,
    /// Retry policy for faulted bursts.
    pub retry: RetryPolicy,
    /// Keep-alive policy for the workflow's warm pool. Leaves of one
    /// workflow share a single pool, so a Sequence re-running the same
    /// profile benefits from warm starts exactly as a flat replay would.
    pub keepalive: KeepAlivePolicy,
    /// Heterogeneous co-packing of Parallel sibling leaves.
    pub co_pack: CoPack,
    /// Profiling configuration for ProPack Map states (part of the
    /// model-cache key, so workflows sharing it share fits with classic
    /// sweep cells).
    pub fit_config: ProPackConfig,
}

impl WorkflowSpec {
    /// Spec with default environment: seed 7, no faults, cold pool, no
    /// co-packing.
    pub fn new(workflow: Workflow) -> Self {
        WorkflowSpec {
            workflow,
            seed: 7,
            faults: FaultSpec::none(),
            retry: RetryPolicy::default(),
            keepalive: KeepAlivePolicy::ColdAlways,
            co_pack: CoPack::Disabled,
            fit_config: ProPackConfig::default(),
        }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Inject faults (with the given retry policy) into every leaf burst.
    pub fn with_faults(mut self, faults: FaultSpec, retry: RetryPolicy) -> Self {
        self.faults = faults;
        self.retry = retry;
        self
    }

    /// Replace the keep-alive policy.
    pub fn with_keepalive(mut self, policy: KeepAlivePolicy) -> Self {
        self.keepalive = policy;
        self
    }

    /// Co-pack Parallel sibling leaves under `interference`.
    pub fn with_co_pack(mut self, interference: InterferenceMatrix) -> Self {
        self.co_pack = CoPack::Siblings(interference);
        self
    }

    /// Replace the ProPack profiling configuration.
    pub fn with_fit_config(mut self, config: ProPackConfig) -> Self {
        self.fit_config = config;
        self
    }

    /// The warm-pool configuration the engine builds for this spec:
    /// cold-start latencies from the platform defaults, policy and seed
    /// from the spec, and the platform's per-placement scheduler latency.
    ///
    /// Public so reduction tests can replay a flat burst against an
    /// *identical* pool.
    pub fn pool_config(&self, placement_secs: f64) -> WarmPoolConfig {
        WarmPoolConfig::cold()
            .with_policy(self.keepalive)
            .with_seed(self.seed)
            .with_placement_secs(placement_secs)
    }

    /// Build a spec from the sweep shape grammar — see [`from_shape`].
    pub fn from_shape(
        shape: &str,
        work: &WorkProfile,
        concurrency: u32,
        packing: MapPacking,
    ) -> Result<Self, WorkflowRunError> {
        from_shape(shape, work, concurrency, packing)
    }
}

/// The shape strings [`from_shape`] understands.
pub fn known_shapes() -> &'static [&'static str] {
    &["task", "map", "map:N", "seq-map", "diamond", "mixed:cpu+io"]
}

/// A light coordination profile derived from the payload profile: small
/// footprint, short runtime, same dependency stack (so warm pools help it
/// the same way they help the real stages).
fn coordinator(work: &WorkProfile) -> WorkProfile {
    WorkProfile::synthetic(&format!("{}-coord", work.name), 0.5, 15.0)
        .with_storage(0.1, 6)
        .with_dependency_load(work.dependency_load_secs)
}

/// The I/O-bound counterpart of a (presumed compute-bound) payload
/// profile: smaller footprint, shorter compute, low contention, heavy
/// storage traffic. Used by the `diamond` / `mixed:cpu+io` shapes to put a
/// genuinely different resource signature on the second branch.
fn io_variant(work: &WorkProfile) -> WorkProfile {
    WorkProfile::synthetic(
        &format!("{}-io", work.name),
        (work.mem_gb * 0.5).max(0.125),
        work.base_exec_secs * 0.6,
    )
    .with_contention(work.contention_per_gb * 0.4)
    .with_storage(work.storage_gb.max(0.25), work.storage_requests.max(10))
    .with_dependency_load(work.dependency_load_secs)
    .with_resource_kind(ResourceKind::Io)
}

/// Build a [`WorkflowSpec`] from the sweep's workflow grammar:
///
/// * `task` — a single Task of `work` (the reduction shape: must replay
///   bit-identically to a flat pooled burst);
/// * `map` / `map:N` — a single Map of `work`, fan-out `concurrency`
///   (or `N`);
/// * `seq-map` — prepare → Map fan-out → collect (the paper's
///   coordinator/worker pipelines, §3);
/// * `diamond` — split → Parallel[cpu-branch Map, io-branch Map] → join,
///   with the cpu branch tagged [`ResourceKind::Cpu`] and the io branch an
///   I/O-bound variant of `work`;
/// * `mixed:cpu+io` — the diamond with sibling co-packing enabled under
///   the reference CPU/IO interference matrix.
///
/// `packing` applies to every Map state.
pub fn from_shape(
    shape: &str,
    work: &WorkProfile,
    concurrency: u32,
    packing: MapPacking,
) -> Result<WorkflowSpec, WorkflowRunError> {
    let diamond = |work: &WorkProfile| -> Workflow {
        let coord = coordinator(work);
        let branch_c = concurrency.div_ceil(2).max(1);
        let cpu_work = work.clone().with_resource_kind(ResourceKind::Cpu);
        Workflow::new(
            format!("diamond-{}", work.name),
            State::Sequence(vec![
                State::Task {
                    name: "split".into(),
                    work: coord.clone(),
                },
                State::Parallel(vec![
                    State::Map {
                        name: "cpu-branch".into(),
                        work: cpu_work,
                        concurrency: branch_c,
                        packing: packing.clone(),
                    },
                    State::Map {
                        name: "io-branch".into(),
                        work: io_variant(work),
                        concurrency: branch_c,
                        packing: packing.clone(),
                    },
                ]),
                State::Task {
                    name: "join".into(),
                    work: coord,
                },
            ]),
        )
    };

    match shape {
        "task" => Ok(WorkflowSpec::new(Workflow::new(
            format!("task-{}", work.name),
            State::Task {
                name: work.name.clone(),
                work: work.clone(),
            },
        ))),
        "seq-map" => {
            let coord = coordinator(work);
            Ok(WorkflowSpec::new(Workflow::new(
                format!("seq-map-{}", work.name),
                State::Sequence(vec![
                    State::Task {
                        name: "prepare".into(),
                        work: coord.clone(),
                    },
                    State::Map {
                        name: "fan-out".into(),
                        work: work.clone(),
                        concurrency,
                        packing,
                    },
                    State::Task {
                        name: "collect".into(),
                        work: coord,
                    },
                ]),
            )))
        }
        "diamond" => Ok(WorkflowSpec::new(diamond(work))),
        "mixed:cpu+io" => {
            let mut spec = WorkflowSpec::new(diamond(work));
            spec.workflow.name = format!("mixed-{}", work.name);
            Ok(spec.with_co_pack(InterferenceMatrix::cpu_io_reference()))
        }
        _ => {
            let fan_out = if shape == "map" {
                Some(concurrency)
            } else {
                shape
                    .strip_prefix("map:")
                    .and_then(|n| n.parse::<u32>().ok())
            };
            match fan_out {
                Some(c) => Ok(WorkflowSpec::new(Workflow::new(
                    format!("map-{}", work.name),
                    State::Map {
                        name: "fan-out".into(),
                        work: work.clone(),
                        concurrency: c,
                        packing,
                    },
                ))),
                None => Err(WorkflowRunError::UnknownShape(shape.to_string())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> WorkProfile {
        WorkProfile::synthetic("sw", 1.0, 90.0)
    }

    #[test]
    fn shapes_parse() {
        let t = from_shape("task", &w(), 100, MapPacking::None).unwrap();
        assert_eq!(t.workflow.root.leaf_count(), 1);
        assert_eq!(t.workflow.root.total_functions(), 1);

        let m = from_shape("map:64", &w(), 100, MapPacking::None).unwrap();
        assert_eq!(m.workflow.root.total_functions(), 64);
        let m = from_shape("map", &w(), 100, MapPacking::None).unwrap();
        assert_eq!(m.workflow.root.total_functions(), 100);

        let s = from_shape("seq-map", &w(), 100, MapPacking::Fixed(4)).unwrap();
        assert_eq!(s.workflow.root.leaf_count(), 3);
        assert_eq!(s.workflow.root.total_functions(), 102);

        let d = from_shape("diamond", &w(), 100, MapPacking::None).unwrap();
        assert_eq!(d.workflow.root.leaf_count(), 4);
        assert_eq!(d.co_pack, CoPack::Disabled);

        let x = from_shape("mixed:cpu+io", &w(), 100, MapPacking::None).unwrap();
        assert_eq!(x.workflow.root.leaf_count(), 4);
        assert!(x.co_pack.interference().is_some());
    }

    #[test]
    fn unknown_shapes_are_errors() {
        for bad in ["", "tri", "map:", "map:x", "mixed:gpu"] {
            assert!(matches!(
                from_shape(bad, &w(), 10, MapPacking::None),
                Err(WorkflowRunError::UnknownShape(_))
            ));
        }
    }

    #[test]
    fn diamond_branches_have_distinct_resource_kinds() {
        let d = from_shape("diamond", &w(), 100, MapPacking::None).unwrap();
        let State::Sequence(stages) = &d.workflow.root else {
            panic!("diamond root must be a sequence");
        };
        let State::Parallel(branches) = &stages[1] else {
            panic!("diamond middle must be parallel");
        };
        let kinds: Vec<_> = branches
            .iter()
            .map(|b| match b {
                State::Map { work, .. } => work.resource_kind,
                _ => panic!("diamond branches must be maps"),
            })
            .collect();
        assert_eq!(kinds, vec![ResourceKind::Cpu, ResourceKind::Io]);
    }
}
