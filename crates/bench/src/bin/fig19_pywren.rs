//! Regenerates fig19 of the paper. Pass --json for machine-readable rows.
fn main() {
    propack_bench::figure_main("fig19");
}
