//! simlint fixture: deliberate `panic-path` violations (4 sites in library
//! code); the `cfg(test)` module and the `unwrap_or` call are exempt.

pub fn bounds(xs: &[u32]) -> u32 {
    let lo = xs.first().unwrap();
    let hi = xs.last().expect("non-empty");
    if lo > hi {
        panic!("unsorted");
    }
    lo + hi
}

pub fn later() -> u32 {
    todo!("not implemented in this fixture")
}

pub fn safe(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
