//! Offline stub for `proptest`: a miniature property-testing runner
//! implementing only what this workspace's suites use — numeric range
//! strategies, `any::<T>()`, `prop::collection::vec`, strategy tuples,
//! `prop_map`/`prop_filter`, the `proptest!` macro, `prop_assert*!` and
//! `prop_assume!`. Deterministic (fixed seed per test name), 64 cases by
//! default (256 with the real crate), no shrinking.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    use std::fmt;

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is not counted.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            }
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// SplitMix64: deterministic generator for strategy sampling. Statistical
/// quality is irrelevant here; coverage breadth is what matters.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generate-only strategy (no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            reason,
        }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter: resamples until the predicate passes (bounded).
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter never satisfied: {}", self.reason);
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )+};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Half-open: never yield `end` even under rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let r: Range<f64> = f64::from(self.start)..f64::from(self.end);
        r.generate(rng) as f32
    }
}

macro_rules! int_range_incl_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 range: every draw is in bounds.
                    rng.next_u64() as $t
                } else {
                    start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )+};
}

int_range_incl_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty strategy range");
        start + rng.unit_f64() * (end - start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Full-domain strategy for `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! any_int {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.unit_f64() * 600.0) - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { 1.0 } else { -1.0 };
        sign * mag.exp2()
    }
}

pub mod strategy {
    pub use super::{Any, Map, Strategy};

    /// `Just`: always the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut super::TestRng) -> T {
            self.0.clone()
        }
    }
}

pub use strategy::Just;

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vec strategy: length uniform in `len`, elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` facade used by `use proptest::prelude::*` call sites.
pub mod prop {
    pub use super::collection;
    pub use super::strategy;
}

pub mod prelude {
    pub use super::test_runner::TestCaseError;
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// FNV-1a over the test name: per-test deterministic seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive one property: run `cases` generated inputs, tolerate rejects
/// (up to a global cap), panic on the first failure.
pub fn run_property<F>(name: &str, cases: u32, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let mut rng = TestRng::new(seed_for(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < cases {
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > cases * 64 {
                    panic!("property {name}: too many prop_assume rejections");
                }
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("property {name} failed after {passed} cases: {msg}");
            }
        }
    }
}

/// Display helper so `prop_assert!(cond, "{}", x)` formats eagerly.
pub fn format_args_to_string(args: fmt::Arguments<'_>) -> String {
    fmt::format(args)
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(concat!("assertion failed: ", stringify!($cond))),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail($crate::format_args_to_string(format_args!($($fmt)+))),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    // Entry: optional inner config attribute, then the function list.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)) => {};
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::run_property(stringify!($name), cfg.cases, |rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    // No config attribute: use the default.
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}
