//! Regenerates every table and figure of the paper's evaluation in order.
//! Pass --json for machine-readable output of all tables.
fn main() {
    let json = std::env::args().any(|a| a == "--json");
    for id in propack_bench::ALL_EXPERIMENTS {
        let tables = propack_bench::run_experiment(id).expect("known id");
        for t in &tables {
            if json {
                println!("{}", t.to_json());
            } else {
                t.print();
                println!();
            }
        }
    }
}
