//! Property-based tests for the workload kernels: algorithmic correctness
//! on arbitrary inputs, not just the calibrated defaults.

use propack_workloads::smith_waterman::{smith_waterman, synth_protein, GapPenalty, AMINO_ACIDS};
use propack_workloads::sort::merge_sort;
use propack_workloads::stateless::{resize_bilinear, Image};
use propack_workloads::xapian::Corpus;
use proptest::prelude::*;

fn protein(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0usize..20, 0..max_len)
        .prop_map(|ids| ids.into_iter().map(|i| AMINO_ACIDS[i]).collect())
}

proptest! {
    /// merge_sort agrees with the standard library on arbitrary input.
    #[test]
    fn merge_sort_matches_std(mut v in prop::collection::vec(any::<u64>(), 0..2000)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        merge_sort(&mut v);
        prop_assert_eq!(v, expect);
    }

    /// Smith-Waterman invariants on arbitrary protein pairs:
    /// score ≥ 0; score ≤ best-possible self alignment of the shorter
    /// sequence; symmetric in its arguments; and alignment end coordinates
    /// stay in range.
    #[test]
    fn smith_waterman_invariants(q in protein(80), t in protein(80)) {
        let gap = GapPenalty::default();
        let aln = smith_waterman(&q, &t, gap);
        prop_assert!(aln.score >= 0);
        prop_assert!(aln.query_end <= q.len());
        prop_assert!(aln.target_end <= t.len());
        // W has the maximum identity score (11); an alignment can never
        // beat perfect identity of the shorter sequence.
        let cap = 11 * q.len().min(t.len()) as i32;
        prop_assert!(aln.score <= cap, "{} > {}", aln.score, cap);
        let rev = smith_waterman(&t, &q, gap);
        prop_assert_eq!(aln.score, rev.score);
    }

    /// Self-alignment of any non-empty sequence scores the sum of its
    /// identity scores and ends at the full length.
    #[test]
    fn smith_waterman_self_alignment(q in protein(60)) {
        prop_assume!(!q.is_empty());
        let aln = smith_waterman(&q, &q, GapPenalty::default());
        let self_score: i32 = q
            .iter()
            .map(|&c| propack_workloads::smith_waterman::substitution_score(c, c))
            .sum();
        prop_assert_eq!(aln.score, self_score);
        prop_assert_eq!(aln.query_end, q.len());
    }

    /// Appending residues to the target can never lower the best local
    /// alignment score (local alignment is monotone under extension).
    #[test]
    fn smith_waterman_monotone_under_extension(q in protein(40), t in protein(40), ext in protein(20)) {
        prop_assume!(!q.is_empty());
        let gap = GapPenalty::default();
        let base = smith_waterman(&q, &t, gap).score;
        let mut t2 = t.clone();
        t2.extend_from_slice(&ext);
        let extended = smith_waterman(&q, &t2, gap).score;
        prop_assert!(extended >= base, "{extended} < {base}");
    }

    /// Bilinear resize output stays within the source value range and has
    /// exactly the requested dimensions.
    #[test]
    fn resize_bounded_and_sized(seed in any::<u64>(), src in 2usize..64, dst in 1usize..64) {
        let img = Image::synthetic(seed, src);
        let out = resize_bilinear(&img, dst);
        prop_assert_eq!(out.size, dst);
        prop_assert_eq!(out.pixels.len(), 3 * dst * dst);
        let lo = img.pixels.iter().copied().min().unwrap();
        let hi = img.pixels.iter().copied().max().unwrap();
        for &p in &out.pixels {
            prop_assert!(p >= lo && p <= hi);
        }
    }

    /// BM25 search: scores non-increasing, at most k results, and results
    /// deterministic.
    #[test]
    fn search_ranked_and_bounded(seed in any::<u64>(), terms in prop::collection::vec(0u32..4096, 1..5), k in 1usize..30) {
        let corpus = Corpus::synthetic(seed, 120, 40);
        let hits = corpus.search(&terms, k);
        prop_assert!(hits.len() <= k);
        for w in hits.windows(2) {
            prop_assert!(w[0].1 >= w[1].1 - 1e-12);
        }
        prop_assert_eq!(&hits, &corpus.search(&terms, k));
        for (_, score) in &hits {
            prop_assert!(*score > 0.0);
        }
    }

    /// synth_protein only emits valid residues and is length-exact.
    #[test]
    fn synth_protein_valid(seed in any::<u64>(), len in 0usize..500) {
        let p = synth_protein(seed, len);
        prop_assert_eq!(p.len(), len);
        for &r in &p {
            prop_assert!(AMINO_ACIDS.contains(&r));
        }
    }
}
