//! Deterministic discrete-event simulation (DES) engine.
//!
//! This is the substrate underneath the serverless platform simulator
//! (`propack-platform`) and the FuncX on-prem simulator (`propack-funcx`).
//! It provides:
//!
//! * a simulated clock and an event queue with **deterministic tie-breaking**
//!   ([`Sim`]): events at equal timestamps fire in scheduling order, so every
//!   run with the same seed reproduces bit-identical timelines;
//! * queueing resources ([`resource::FifoResource`],
//!   [`resource::BandwidthPipe`], [`resource::MultiServer`]) that model the
//!   serialization points a serverless control plane has — a central
//!   scheduler, an image-build server, a shipping fabric;
//! * seeded, stream-split random number generation ([`rng::RngStreams`]) so
//!   that adding noise to one component never perturbs another component's
//!   draw sequence.
//!
//! The engine is intentionally synchronous and single-threaded: a burst of
//! 5 000 concurrent function invocations is a few tens of thousands of
//! events, which simulates in well under a millisecond. Parallelism in this
//! workspace lives at the *experiment* level (independent simulations on
//! different threads, see `propack-sweep`), where it is embarrassingly
//! parallel and deterministic. To support that, every core type here is
//! [`Send`] — event closures carry a `Send` bound, and the audit below
//! fails to compile if a non-`Send` member ever sneaks in.

pub mod engine;
pub mod epoch;
pub mod fault;
pub mod resource;
pub mod rng;
pub mod time;
pub mod trace;

pub use engine::{EventState, Sim};
pub use epoch::EpochTimeline;
pub use fault::{CohortOutcomes, FaultPlan, FaultSpec, RetryPolicy};
pub use resource::{BandwidthPipe, FifoResource, MultiServer};
pub use rng::RngStreams;
pub use time::SimTime;
pub use trace::{TraceEvent, Tracer};

#[cfg(test)]
mod send_audit {
    //! Compile-time audit: the sweep engine moves whole simulations across
    //! worker threads, so these types must stay `Send` (and the passive data
    //! holders `Sync`). A regression here is a build failure, not a runtime
    //! surprise in a far-away crate.
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn core_types_are_send() {
        assert_send::<Sim<Vec<u64>>>();
        assert_send::<EpochTimeline>();
        assert_send::<RngStreams>();
        assert_send::<Tracer>();
        assert_send::<TraceEvent>();
        assert_send::<SimTime>();
        assert_send::<FifoResource>();
        assert_send::<BandwidthPipe>();
        assert_send::<MultiServer>();
        assert_send::<FaultPlan>();
        assert_send::<FaultSpec>();
        assert_send::<RetryPolicy>();
    }

    #[test]
    fn passive_types_are_sync() {
        assert_sync::<EpochTimeline>();
        assert_sync::<RngStreams>();
        assert_sync::<Tracer>();
        assert_sync::<TraceEvent>();
        assert_sync::<SimTime>();
        assert_sync::<FaultSpec>();
        assert_sync::<RetryPolicy>();
    }
}
