//! Profiling: the measurement phase that feeds ProPack's models.
//!
//! Two campaigns, mirroring §2.1–2.2:
//!
//! * [`profile_interference`] — run the application at a subset of packing
//!   degrees (every other degree; the curve is monotone so alternate points
//!   suffice — this is how the paper gets away with 20/8/15 sample points
//!   for Video/Sort/Stateless) at a *small* instance count, far below the
//!   concurrency bottleneck.
//! * [`probe_scaling`] — spawn ~10 bursts of a trivial function at
//!   increasing concurrency to fit the platform's scaling polynomial. No
//!   application code runs; the probes are application-independent and the
//!   resulting model is reused across every application on the platform
//!   (§2.2's "needs to be developed only once").
//!
//! Every probe burst's cost is accumulated into an [`Overhead`] record —
//! the paper includes all profiling overhead in its reported results, and
//! so do the experiments in this repository.

use crate::interference::InterferenceSample;
use crate::scaling::ScalingSample;
use crate::ModelError;
use propack_platform::{BurstSpec, PlatformError, ServerlessPlatform, WorkProfile};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Accumulated cost of model building.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Overhead {
    /// Total profiling expense (USD).
    pub expense_usd: f64,
    /// Total profiling compute (function-hours).
    pub function_hours: f64,
    /// Probe bursts executed.
    pub bursts: u32,
}

impl Overhead {
    /// Merge another overhead record into this one.
    pub fn absorb(&mut self, other: Overhead) {
        self.expense_usd += other.expense_usd;
        self.function_hours += other.function_hours;
        self.bursts += other.bursts;
    }
}

/// Interference-profiling outcome: samples plus effective degree cap.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceProfile {
    /// Observed `(degree, mean exec time)` samples.
    pub samples: Vec<InterferenceSample>,
    /// Highest degree that executed successfully. Lower than the memory
    /// cap when the platform's execution-time limit bites first.
    pub feasible_p_max: u32,
    /// Cost of the campaign.
    pub overhead: Overhead,
}

/// Profile packing interference for `work` on `platform` (§2.1).
///
/// Samples degree 1, then every `degree_step`-th degree, always including
/// the memory-cap maximum. Degrees that hit the platform's execution cap
/// are dropped and tighten the feasible maximum — this is how the
/// "maximum allowable latency" constraint of §2.1 is discovered.
pub fn profile_interference<P: ServerlessPlatform + ?Sized>(
    platform: &P,
    work: &WorkProfile,
    probe_instances: u32,
    degree_step: u32,
    seed: u64,
) -> Result<InterferenceProfile, ModelError> {
    let mem_cap = work.max_packing_degree(platform.limits().mem_gb);
    let step = degree_step.max(1);
    let mut degrees: Vec<u32> = (1..=mem_cap).step_by(step as usize).collect();
    if degrees.last() != Some(&mem_cap) {
        degrees.push(mem_cap);
    }

    let mut samples = Vec::with_capacity(degrees.len());
    let mut overhead = Overhead::default();
    let mut feasible_p_max = 1;
    // One shared allocation for the whole campaign: every probe burst holds
    // the same `Arc<WorkProfile>` instead of deep-cloning the profile.
    let work: Arc<WorkProfile> = Arc::new(work.clone());
    for (k, &p) in degrees.iter().enumerate() {
        let spec = BurstSpec::new(Arc::clone(&work), probe_instances.max(1), p)
            .with_seed(seed ^ (k as u64) << 32);
        match platform.run_burst(&spec) {
            Ok(report) => {
                overhead.expense_usd += report.expense.total_usd();
                overhead.function_hours += report.function_hours();
                overhead.bursts += 1;
                samples.push(InterferenceSample {
                    packing_degree: p,
                    exec_secs: report.exec_summary().mean(),
                });
                feasible_p_max = feasible_p_max.max(p);
            }
            // The execution cap truncates the feasible range; degrees only
            // get slower from here, so stop probing.
            Err(PlatformError::ExecutionTimeout { .. }) => break,
            Err(e) => return Err(ModelError::Platform(e)),
        }
    }
    if samples.len() < 2 {
        return Err(ModelError::NotEnoughSamples {
            needed: 2,
            got: samples.len(),
        });
    }
    Ok(InterferenceProfile {
        samples,
        feasible_p_max,
        overhead,
    })
}

/// Scaling-probe outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingProbe {
    /// Observed `(concurrency, scaling time)` samples.
    pub samples: Vec<ScalingSample>,
    /// Cost of the campaign.
    pub overhead: Overhead,
}

/// The trivial function used for scaling probes: tiny footprint, sub-second
/// body — its execution cost is negligible, as §2.2 requires ("evaluating a
/// sample does not require the execution of any actual function code").
pub fn probe_workload() -> WorkProfile {
    WorkProfile::synthetic("scaling-probe", 0.125, 0.2)
}

/// Probe the platform's scaling behaviour at the given concurrency levels
/// (§2.2; the paper uses ten or fewer samples).
pub fn probe_scaling<P: ServerlessPlatform + ?Sized>(
    platform: &P,
    levels: &[u32],
    seed: u64,
) -> Result<ScalingProbe, ModelError> {
    let work: Arc<WorkProfile> = Arc::new(probe_workload());
    let mut samples = Vec::with_capacity(levels.len());
    let mut overhead = Overhead::default();
    for (k, &c) in levels.iter().enumerate() {
        let spec =
            BurstSpec::new(Arc::clone(&work), c, 1).with_seed(seed ^ 0xA5A5 ^ (k as u64) << 24);
        let report = platform.run_burst(&spec)?;
        overhead.expense_usd += report.expense.total_usd();
        overhead.function_hours += report.function_hours();
        overhead.bursts += 1;
        samples.push(ScalingSample {
            concurrency: c,
            scaling_secs: report.scaling_time(),
        });
    }
    Ok(ScalingProbe { samples, overhead })
}

/// The default probe ladder: ten levels spanning the evaluation range.
pub fn default_scaling_levels() -> Vec<u32> {
    (1..=10).map(|i| i * 250).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::PlatformBuilder;

    fn aws() -> propack_platform::CloudPlatform {
        PlatformBuilder::aws().build()
    }

    fn work() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 100.0).with_contention(0.2)
    }

    #[test]
    fn interference_profile_samples_alternate_degrees() {
        let prof = profile_interference(&aws(), &work(), 3, 2, 7).unwrap();
        // Degrees 1, 3, 5, … 39, plus the cap 40 → 21 samples (the paper
        // quotes 20 for Video; the cap endpoint is the +1).
        assert_eq!(prof.samples.len(), 21);
        assert_eq!(prof.samples[0].packing_degree, 1);
        assert_eq!(prof.samples.last().unwrap().packing_degree, 40);
        assert_eq!(prof.feasible_p_max, 40);
        assert_eq!(prof.overhead.bursts, 21);
        assert!(prof.overhead.expense_usd > 0.0);
    }

    #[test]
    fn interference_samples_monotone() {
        let prof = profile_interference(&aws(), &work(), 3, 2, 7).unwrap();
        for w in prof.samples.windows(2) {
            assert!(
                w[1].exec_secs > w[0].exec_secs * 0.98,
                "interference not ≈monotone: {:?}",
                w
            );
        }
    }

    #[test]
    fn execution_cap_truncates_probing() {
        // base 500 s with strong contention exceeds the 900 s Lambda cap at
        // modest degrees; the profiler must stop there, not error.
        let slow = WorkProfile::synthetic("slow", 0.25, 500.0).with_contention(0.5);
        let prof = profile_interference(&aws(), &slow, 5, 2, 1).unwrap();
        assert!(
            prof.feasible_p_max < 10,
            "cap not applied: {}",
            prof.feasible_p_max
        );
        assert!(prof.samples.len() >= 2);
    }

    #[test]
    fn probe_scaling_collects_requested_levels() {
        let probe = probe_scaling(&aws(), &[200, 400, 800], 3).unwrap();
        assert_eq!(probe.samples.len(), 3);
        assert!(probe.samples[0].scaling_secs < probe.samples[2].scaling_secs);
        assert_eq!(probe.overhead.bursts, 3);
    }

    #[test]
    fn probe_overhead_is_small() {
        // §2.2: the scaling probe is cheap — trivial functions, ≤ 10
        // bursts. Assert the whole campaign stays under a dollar.
        let probe = probe_scaling(&aws(), &default_scaling_levels(), 3).unwrap();
        assert!(
            probe.overhead.expense_usd < 1.0,
            "{}",
            probe.overhead.expense_usd
        );
    }

    #[test]
    fn default_levels_are_ten() {
        assert_eq!(default_scaling_levels().len(), 10);
    }
}
