//! Workflow run reports: per-leaf stage rows, totals, and the realized
//! critical path.

use propack_platform::FaultSummary;
use serde::{Deserialize, Serialize};

/// What kind of execution a stage row records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageKind {
    /// A single-function Task leaf.
    Task,
    /// A homogeneous Map fan-out.
    Map,
    /// A Map (or Task) leaf that ran inside a fused heterogeneous
    /// co-packed burst with its Parallel siblings.
    CoPacked,
}

impl StageKind {
    /// Stable lowercase label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            StageKind::Task => "task",
            StageKind::Map => "map",
            StageKind::CoPacked => "copack",
        }
    }
}

/// One executed leaf (Task or Map state) of the workflow DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageRow {
    /// State name.
    pub name: String,
    /// Occurrence ordinal among same-named leaves (pre-order).
    pub ordinal: u64,
    /// How the leaf executed.
    pub kind: StageKind,
    /// Start offset from workflow launch (seconds): the max of the
    /// predecessors' finish times.
    pub start_secs: f64,
    /// Service time of the leaf's burst (seconds).
    pub duration_secs: f64,
    /// Fan-out width (1 for Tasks).
    pub concurrency: u32,
    /// Packing degree used (copies per instance inside a co-packed burst).
    pub packing_degree: u32,
    /// Instances the burst placed (summed over retry rounds).
    pub instances: u32,
    /// Billed expense attributed to this leaf (USD).
    pub expense_usd: f64,
    /// Billed compute attributed to this leaf (function-hours).
    pub function_hours: f64,
    /// Same-function warm starts granted by the workflow pool.
    pub warm_grants: u64,
    /// Retry rounds the leaf needed.
    pub retries: u64,
    /// Functions abandoned after retries were exhausted.
    pub abandoned_functions: u64,
    /// Whether this leaf lies on the realized critical path.
    pub on_critical_path: bool,
}

impl StageRow {
    /// Finish offset from workflow launch (seconds).
    pub fn finish_secs(&self) -> f64 {
        self.start_secs + self.duration_secs
    }
}

/// One hop of the realized critical path, in execution order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalHop {
    /// Leaf state name.
    pub name: String,
    /// Occurrence ordinal (matches the stage row).
    pub ordinal: u64,
    /// Start offset (seconds).
    pub start_secs: f64,
    /// Duration (seconds).
    pub duration_secs: f64,
}

/// The result of replaying one workflow DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowRunReport {
    /// Workflow name.
    pub name: String,
    /// Platform display name.
    pub platform: String,
    /// Root seed.
    pub seed: u64,
    /// Keep-alive policy label of the workflow pool.
    pub keepalive: String,
    /// Whether any stage ran co-packed.
    pub co_packed: bool,
    /// End-to-end wall time (seconds): the latest leaf finish.
    pub makespan_secs: f64,
    /// Total expense (USD), including ProPack profiling overhead.
    pub expense_usd: f64,
    /// Total billed compute (function-hours), including overhead.
    pub function_hours: f64,
    /// ProPack profiling overhead charged this run (USD; once per distinct
    /// workload, whether the fit was cold or cached).
    pub model_overhead_usd: f64,
    /// Executed leaves, ordered by (start, name, ordinal).
    pub stages: Vec<StageRow>,
    /// The chain of leaves that realized the makespan, launch → finish.
    pub critical_path: Vec<CriticalHop>,
    /// Fault and retry counters merged across every leaf burst.
    pub faults: FaultSummary,
}

impl WorkflowRunReport {
    /// Sum of critical-path hop durations — the compute (non-idle) share
    /// of the makespan along the critical chain.
    pub fn critical_busy_secs(&self) -> f64 {
        self.critical_path.iter().map(|h| h.duration_secs).sum()
    }

    /// True when any leaf abandoned functions after exhausting retries.
    pub fn is_partial(&self) -> bool {
        self.stages.iter().any(|s| s.abandoned_functions > 0)
    }

    /// Deterministic fixed-precision rendering: a header line, one
    /// tab-separated row per stage, the critical path, and a fault line
    /// when anything faulted. No host timing appears anywhere — equal
    /// simulations render byte-identically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "workflow {} on {}: stages={} makespan_s={:.3} expense_usd={:.6} fn_hours={:.6} overhead_usd={:.6} seed={} keepalive={} copack={}\n",
            self.name,
            self.platform,
            self.stages.len(),
            self.makespan_secs,
            self.expense_usd,
            self.function_hours,
            self.model_overhead_usd,
            self.seed,
            self.keepalive,
            if self.co_packed { "yes" } else { "no" },
        ));
        out.push_str(
            "stage\tkind\tstart_s\tdur_s\tC\tP\tinst\texpense_usd\tfn_hours\twarm\tretries\tfailed\tcrit\n",
        );
        for s in &self.stages {
            out.push_str(&format!(
                "{}#{}\t{}\t{:.3}\t{:.3}\t{}\t{}\t{}\t{:.6}\t{:.6}\t{}\t{}\t{}\t{}\n",
                s.name,
                s.ordinal,
                s.kind.label(),
                s.start_secs,
                s.duration_secs,
                s.concurrency,
                s.packing_degree,
                s.instances,
                s.expense_usd,
                s.function_hours,
                s.warm_grants,
                s.retries,
                s.abandoned_functions,
                if s.on_critical_path { "*" } else { "-" },
            ));
        }
        let chain = self
            .critical_path
            .iter()
            .map(|h| format!("{}#{}({:.3}s)", h.name, h.ordinal, h.duration_secs))
            .collect::<Vec<_>>()
            .join(" -> ");
        out.push_str(&format!(
            "critical\t{}\tbusy_s={:.3}\n",
            chain,
            self.critical_busy_secs()
        ));
        if self.faults.total_faults() > 0 || self.faults.failed_functions > 0 {
            out.push_str(&format!(
                "faults\tcrashes={} provision={} ship={} straggler={} retries={} failed={}\n",
                self.faults.crashes,
                self.faults.provision_failures,
                self.faults.ship_stalls,
                self.faults.stragglers,
                self.faults.retries,
                self.faults.failed_functions,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> WorkflowRunReport {
        WorkflowRunReport {
            name: "wf".into(),
            platform: "AWS".into(),
            seed: 7,
            keepalive: "cold".into(),
            co_packed: false,
            makespan_secs: 12.5,
            expense_usd: 0.25,
            function_hours: 0.03,
            model_overhead_usd: 0.0,
            stages: vec![StageRow {
                name: "t".into(),
                ordinal: 0,
                kind: StageKind::Task,
                start_secs: 0.0,
                duration_secs: 12.5,
                concurrency: 1,
                packing_degree: 1,
                instances: 1,
                expense_usd: 0.25,
                function_hours: 0.03,
                warm_grants: 0,
                retries: 0,
                abandoned_functions: 0,
                on_critical_path: true,
            }],
            critical_path: vec![CriticalHop {
                name: "t".into(),
                ordinal: 0,
                start_secs: 0.0,
                duration_secs: 12.5,
            }],
            faults: FaultSummary::default(),
        }
    }

    #[test]
    fn render_is_stable_and_fault_line_is_conditional() {
        let r = report();
        let text = r.render();
        assert!(text.starts_with("workflow wf on AWS: stages=1"));
        assert!(text.contains("t#0\ttask\t0.000\t12.500"));
        assert!(text.contains("critical\tt#0(12.500s)\tbusy_s=12.500"));
        assert!(
            !text.contains("faults\t"),
            "fault-free run renders no fault line"
        );
        assert_eq!(text, r.render(), "render is deterministic");
    }

    #[test]
    fn critical_busy_and_partial() {
        let mut r = report();
        assert_eq!(r.critical_busy_secs(), 12.5);
        assert!(!r.is_partial());
        r.stages[0].abandoned_functions = 2;
        assert!(r.is_partial());
    }

    #[test]
    #[cfg_attr(
        feature = "offline-stub",
        ignore = "requires real serde_json (offline stub cannot serialize)"
    )]
    fn report_round_trips_through_serde() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: WorkflowRunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
