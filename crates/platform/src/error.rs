//! Platform error types.

/// Errors a platform can return for a burst request.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// The packed functions exceed the instance memory limit:
    /// `packing_degree × mem_gb > platform mem`. The paper treats the
    /// provider memory cap as a hard constraint on the packing degree
    /// (§2.6: "ProPack's packing degree can be modified to ensure that it
    /// does not violate the memory limit enforced by the cloud provider").
    MemoryLimitExceeded {
        /// Requested packing degree.
        packing_degree: u32,
        /// Per-function memory in GB.
        mem_gb: f64,
        /// Instance memory cap in GB.
        limit_gb: f64,
    },
    /// Execution of a packed instance would exceed the provider's execution
    /// cap (AWS Lambda: 15 minutes). §4 notes that long per-function
    /// execution times cause the *baseline* to time out at high
    /// concurrency.
    ExecutionTimeout {
        /// Projected execution time in seconds.
        projected_secs: f64,
        /// Provider cap in seconds.
        limit_secs: f64,
    },
    /// A burst of zero instances or zero packing degree.
    EmptyBurst,
    /// The datacenter fleet cannot hold the requested number of concurrent
    /// instances (capacity admission failure — clouds surface this as
    /// throttling).
    FleetSaturated {
        /// Instances requested.
        requested: u32,
        /// Total fleet slots.
        capacity: u64,
    },
    /// The platform has no mixed-instance model: heterogeneous co-packed
    /// bursts ([`crate::mixed::MixedBurstSpec`]) only run on platforms that
    /// implement the pairwise interference mechanism.
    MixedBurstsUnsupported {
        /// The platform that rejected the request.
        platform: String,
    },
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::MemoryLimitExceeded { packing_degree, mem_gb, limit_gb } => write!(
                f,
                "packing degree {packing_degree} × {mem_gb} GB exceeds the {limit_gb} GB instance limit"
            ),
            PlatformError::ExecutionTimeout { projected_secs, limit_secs } => write!(
                f,
                "projected execution of {projected_secs:.1}s exceeds the {limit_secs:.0}s platform cap"
            ),
            PlatformError::EmptyBurst => write!(f, "burst must have ≥1 instance and ≥1 packing degree"),
            PlatformError::FleetSaturated { requested, capacity } => write!(
                f,
                "fleet saturated: {requested} concurrent instances exceed {capacity} slots"
            ),
            PlatformError::MixedBurstsUnsupported { platform } => write!(
                f,
                "{platform} has no mixed-instance model; co-packed bursts need one"
            ),
        }
    }
}

impl std::error::Error for PlatformError {}
