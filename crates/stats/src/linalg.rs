//! Minimal dense linear algebra: just enough to solve the small normal
//! equations produced by polynomial least squares (systems of order ≤ 8).

use crate::{Result, StatsError};

/// A small, row-major dense matrix.
///
/// Only the operations needed by [`crate::regression`] are provided:
/// construction, indexing, and an in-place Gaussian-elimination solve with
/// partial pivoting. Matrices in this workspace are tiny (order ≤ 8), so no
/// blocking or SIMD is warranted.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix from a nested slice; panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged row {i}");
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Solve `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// Consumes a copy of the matrix internally; `A` must be square and of
    /// the same order as `b`. Returns [`StatsError::Singular`] when a pivot
    /// collapses below `1e-12` relative to the largest entry.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.rows;
        if n != self.cols || b.len() != n {
            return Err(StatsError::LengthMismatch { xs: n, ys: b.len() });
        }
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        let scale = a.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1.0);

        for col in 0..n {
            // Partial pivot: find the largest |a[row][col]| for row >= col.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for row in (col + 1)..n {
                let v = a[row * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < 1e-12 * scale {
                return Err(StatsError::Singular);
            }
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / pivot;
                // simlint: allow(float-eq): "skip-zero fast path; eliminating with factor 0 is a no-op"
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                x[row] -= factor * x[col];
            }
        }

        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for k in (col + 1)..n {
                sum -= a[col * n + k] * x[k];
            }
            x[col] = sum / a[col * n + col];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = Matrix::zeros(3, 3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_general_system() {
        // 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3
        let m = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // First pivot is zero; without partial pivoting this would fail.
        let m = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = m.solve(&[2.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_singular() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(m.solve(&[1.0, 2.0]), Err(StatsError::Singular));
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let m = Matrix::zeros(2, 3);
        assert!(m.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
    }
}
