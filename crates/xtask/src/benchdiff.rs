//! `cargo xtask benchdiff` — the kernel-throughput regression gate.
//!
//! Compares the per-policy `cells_per_sec` figures of a freshly generated
//! `BENCH_kernel.json` against the committed baseline
//! (`crates/bench/baselines/kernel_baseline.json`) and fails when any group
//! regressed by more than the tolerance. Absolute throughput is noisy across
//! machines, so the gate is generous (30 % by default) — it exists to catch
//! accidental algorithmic regressions (an O(n) scan reintroduced on a hot
//! path), not scheduler jitter.
//!
//! The parser is a line-oriented duplicate of
//! `propack_bench::kernel::parse_cells_per_sec`: xtask takes no
//! dependencies (not even on workspace crates), so it cannot link the bench
//! crate. Both sides rely on `BENCH_kernel.json` writing each group object
//! on one line carrying both a `"policy"` and a `"cells_per_sec"` key.

use std::path::Path;
use std::process::ExitCode;

/// Extract `(policy, cells_per_sec)` pairs from a `BENCH_kernel.json`
/// document.
pub fn parse_cells_per_sec(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(policy) = extract_str(line, "\"policy\": \"") else {
            continue;
        };
        let Some(value) = extract_f64(line, "\"cells_per_sec\": ") else {
            continue;
        };
        out.push((policy, value));
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_f64(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == 'e' || ch == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One policy group's comparison outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within tolerance (or faster). Carries current/baseline ratio.
    Ok(f64),
    /// Regressed beyond tolerance. Carries current/baseline ratio.
    Regressed(f64),
    /// Policy present in the baseline but missing from the current run.
    Missing,
}

/// Compare current vs. baseline throughput per policy. Every baseline policy
/// must appear in the current document; policies new in the current document
/// pass (there is nothing to regress against).
pub fn compare(
    current: &[(String, f64)],
    baseline: &[(String, f64)],
    tolerance: f64,
) -> Vec<(String, Verdict)> {
    baseline
        .iter()
        .map(|(policy, base)| {
            let verdict = match current.iter().find(|(p, _)| p == policy) {
                None => Verdict::Missing,
                Some((_, now)) => {
                    let ratio = if *base > 0.0 {
                        now / base
                    } else {
                        f64::INFINITY
                    };
                    if ratio < 1.0 - tolerance {
                        Verdict::Regressed(ratio)
                    } else {
                        Verdict::Ok(ratio)
                    }
                }
            };
            (policy.clone(), verdict)
        })
        .collect()
}

/// Run the gate: parse both documents, compare, report to stderr.
pub fn run(current: &Path, baseline: &Path, tolerance: f64) -> ExitCode {
    let read = |path: &Path| -> Result<Vec<(String, f64)>, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let groups = parse_cells_per_sec(&text);
        if groups.is_empty() {
            return Err(format!(
                "{}: no `policy`/`cells_per_sec` groups found",
                path.display()
            ));
        }
        Ok(groups)
    };
    let (current_groups, baseline_groups) = match (read(current), read(baseline)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failed = false;
    for (policy, verdict) in compare(&current_groups, &baseline_groups, tolerance) {
        match verdict {
            Verdict::Ok(ratio) => {
                eprintln!("benchdiff: {policy}: {:.2}x baseline — ok", ratio);
            }
            Verdict::Regressed(ratio) => {
                failed = true;
                eprintln!(
                    "benchdiff: {policy}: {:.2}x baseline — REGRESSED beyond {:.0}% tolerance",
                    ratio,
                    tolerance * 100.0
                );
            }
            Verdict::Missing => {
                failed = true;
                eprintln!("benchdiff: {policy}: missing from current run — FAILED");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!("benchdiff: within {:.0}% tolerance", tolerance * 100.0);
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "bench": "kernel",
  "groups": [
    {"policy": "no-packing", "cells": 8, "wall_secs": 0.1, "cells_per_sec": 80.0},
    {"policy": "propack-joint-0.5", "cells": 8, "wall_secs": 0.2, "cells_per_sec": 40.0}
  ]
}
"#;

    #[test]
    fn parser_reads_groups() {
        let groups = parse_cells_per_sec(DOC);
        assert_eq!(
            groups,
            vec![
                ("no-packing".to_string(), 80.0),
                ("propack-joint-0.5".to_string(), 40.0)
            ]
        );
    }

    #[test]
    fn within_tolerance_passes() {
        let base = parse_cells_per_sec(DOC);
        let current = vec![
            ("no-packing".to_string(), 60.0),         // 0.75x: ok at 30%
            ("propack-joint-0.5".to_string(), 120.0), // faster: ok
        ];
        let verdicts = compare(&current, &base, 0.30);
        assert!(
            verdicts.iter().all(|(_, v)| matches!(v, Verdict::Ok(_))),
            "{verdicts:?}"
        );
    }

    #[test]
    fn beyond_tolerance_regresses() {
        let base = parse_cells_per_sec(DOC);
        let current = vec![
            ("no-packing".to_string(), 80.0),
            ("propack-joint-0.5".to_string(), 20.0), // 0.5x: regressed
        ];
        let verdicts = compare(&current, &base, 0.30);
        assert_eq!(verdicts[0].1, Verdict::Ok(1.0));
        assert!(matches!(verdicts[1].1, Verdict::Regressed(r) if (r - 0.5).abs() < 1e-12));
    }

    #[test]
    fn missing_policy_fails_and_new_policy_passes() {
        let base = parse_cells_per_sec(DOC);
        let current = vec![
            ("no-packing".to_string(), 80.0),
            ("brand-new-policy".to_string(), 1.0),
        ];
        let verdicts = compare(&current, &base, 0.30);
        assert_eq!(verdicts.len(), 2, "one verdict per baseline policy");
        assert!(matches!(verdicts[1].1, Verdict::Missing));
    }
}
