//! Cross-file analyses: facts are harvested from every parsed file, joined
//! into workspace-level tables, and then re-checked against each file.
//!
//! Three analyses live here:
//!
//! 1. **RNG-lane registry** (`rng-lane`): the lane constants declared in
//!    `simcore::rng::lanes` form a registry; every `.stream(…)` /
//!    `.stream_indexed(…)` call site — and every bulk-head call site
//!    (`.head_indexed(…)` / `.head_indexed4(…)` / `.head_indexed8(…)`,
//!    the batch-fault fast path) — must pass one of them. Raw string
//!    literals, dynamic expressions, and constants missing from the
//!    registry are findings — as are registry lanes that are never used
//!    and any two lanes whose FNV-1a hashes collide (a collision silently
//!    merges two "independent" streams).
//! 2. **Banned-type aliases** (`hash-map`): `use std::collections::HashMap
//!    as FastMap;` (or a `type` alias) in one file makes every later
//!    `FastMap` use a randomized-order map that the v1 token scan cannot
//!    see. The alias table is built workspace-wide and usages are flagged
//!    in simulation crates.
//! 3. **Panic-wrapper macros** (`panic-path`): a `macro_rules!` whose body
//!    panics (directly or via another wrapper) re-arms the panic rule at
//!    every invocation site in the panic-free crates, where the v1 scan
//!    only saw an innocent-looking `name!(…)`.

use crate::ast::parser::{
    child_test_flags, flatten, group_at, is_ident, is_punct, leaf_at, walk_levels, Group,
    ParsedFile, Tree,
};
use crate::ast::rules::group_body_has_panic;
use crate::lexer::TokenKind;
use crate::rules::{FileCtx, Violation, PANIC_FREE_CRATES, SIM_CRATES};
use std::collections::BTreeMap;

/// One lane constant declared inside a `mod lanes { … }` registry.
#[derive(Debug, Clone)]
pub struct LaneConst {
    pub name: String,
    pub value: String,
    pub rel_path: String,
    pub line: u32,
}

/// How a `.stream(…)`/`.stream_indexed(…)`/`.head_indexed{,4,8}(…)` call
/// site names its lane.
#[derive(Debug, Clone)]
pub enum LaneArg {
    /// A raw string literal (the registry bypass the rule exists to stop).
    Literal(String),
    /// A path ending in a SCREAMING_CASE constant (candidate registry ref).
    Const(String),
    /// Anything else: a variable, method call, computed expression.
    Dynamic(String),
}

/// One lane-taking call site.
#[derive(Debug, Clone)]
pub struct StreamCall {
    pub rel_path: String,
    pub line: u32,
    pub arg: LaneArg,
}

/// A workspace alias for a banned type (`use … HashMap as X` / `type X = …`).
#[derive(Debug, Clone)]
pub struct AliasDef {
    pub alias: String,
    /// The banned root type (`HashMap` or `HashSet`).
    pub root: String,
    pub rel_path: String,
    pub line: u32,
}

/// A `macro_rules!` definition plus what its body mentions.
#[derive(Debug, Clone)]
pub struct MacroDef {
    pub name: String,
    pub rel_path: String,
    pub line: u32,
    /// Body panics directly (`panic!`/`todo!`/`unimplemented!`/`.unwrap()`).
    pub panics_directly: bool,
    /// Other macros the body invokes (for transitive wrapper closure).
    pub invokes: Vec<String>,
}

/// Everything the cross-file phase harvests from one parsed file.
#[derive(Debug, Default)]
pub struct FileFacts {
    pub lanes: Vec<LaneConst>,
    pub calls: Vec<StreamCall>,
    pub aliases: Vec<AliasDef>,
    pub macros: Vec<MacroDef>,
}

/// Harvest facts and emit the per-file half of the `rng-lane` rule
/// (literal/dynamic lane arguments are knowable without the registry).
pub fn harvest(parsed: &ParsedFile, ctx: &FileCtx, out: &mut Vec<Violation>) -> FileFacts {
    let mut facts = FileFacts::default();
    walk_levels(&parsed.trees, ctx.test_target, &mut |level, _| {
        collect_lane_registry(level, ctx, &mut facts);
        collect_stream_calls(level, ctx, &mut facts, out);
        collect_aliases(level, ctx, &mut facts);
        collect_macro_defs(level, ctx, &mut facts);
    });
    facts
}

/// `mod lanes { pub const NAME: &str = "value"; … }`.
fn collect_lane_registry(level: &[Tree], ctx: &FileCtx, facts: &mut FileFacts) {
    for (i, t) in level.iter().enumerate() {
        if !is_ident(t, "mod") || !matches!(level.get(i + 1), Some(n) if is_ident(n, "lanes")) {
            continue;
        }
        let Some(body) = group_at(level, i + 2, '{') else {
            continue;
        };
        let lv = &body.trees;
        for (j, u) in lv.iter().enumerate() {
            if !is_ident(u, "const") {
                continue;
            }
            let Some(name) = leaf_at(lv, j + 1).filter(|n| n.kind == TokenKind::Ident) else {
                continue;
            };
            // Find the `=` for this const, then require a string literal.
            let mut k = j + 2;
            while k < lv.len() && !is_punct(&lv[k], "=") && !is_punct(&lv[k], ";") {
                k += 1;
            }
            if k < lv.len() && is_punct(&lv[k], "=") {
                if let Some(val) = leaf_at(lv, k + 1).filter(|v| v.kind == TokenKind::StrLit) {
                    facts.lanes.push(LaneConst {
                        name: name.text.clone(),
                        value: val.text.clone(),
                        rel_path: ctx.rel_path.clone(),
                        line: name.line,
                    });
                }
            }
        }
    }
}

/// `.stream(ARG, …)` / `.stream_indexed(ARG, …)` call sites, plus the
/// bulk stream-head forms (`head_indexed`, `head_indexed4`,
/// `head_indexed8`) the batch-fault cohort path draws through — a head is
/// the first block of the very stream `stream_indexed` would build, so it
/// is subject to exactly the same lane discipline.
fn collect_stream_calls(
    level: &[Tree],
    ctx: &FileCtx,
    facts: &mut FileFacts,
    out: &mut Vec<Violation>,
) {
    const LANE_METHODS: &[&str] = &[
        "stream",
        "stream_indexed",
        "head_indexed",
        "head_indexed4",
        "head_indexed8",
    ];
    for (i, t) in level.iter().enumerate() {
        let Some(tok) = t.leaf() else { continue };
        let is_call = tok.kind == TokenKind::Ident
            && LANE_METHODS.contains(&tok.text.as_str())
            && i >= 1
            && is_punct(&level[i - 1], ".");
        if !is_call {
            continue;
        }
        let Some(args) = group_at(level, i + 1, '(') else {
            continue;
        };
        let arg = classify_lane_arg(&args.trees);
        match &arg {
            LaneArg::Literal(s) => out.push(Violation {
                rule: "rng-lane",
                rel_path: ctx.rel_path.clone(),
                line: tok.line,
                message: format!(
                    "raw string literal {s:?} names an RNG lane; pass a constant from \
                     `simcore::rng::lanes` so every active lane is registered, \
                     collision-checked, and auditable in one place"
                ),
            }),
            LaneArg::Dynamic(d) => out.push(Violation {
                rule: "rng-lane",
                rel_path: ctx.rel_path.clone(),
                line: tok.line,
                message: format!(
                    "non-constant RNG lane expression `{d}`; pass a `&'static str` \
                     constant from `simcore::rng::lanes` (lane names must be \
                     statically known for the registry's collision audit)"
                ),
            }),
            LaneArg::Const(_) => {}
        }
        facts.calls.push(StreamCall {
            rel_path: ctx.rel_path.clone(),
            line: tok.line,
            arg,
        });
    }
}

/// Classify the first argument of a stream call.
fn classify_lane_arg(args: &[Tree]) -> LaneArg {
    // First argument: trees up to the first top-level comma.
    let end = args
        .iter()
        .position(|t| is_punct(t, ","))
        .unwrap_or(args.len());
    let mut first = &args[..end];
    while let Some(t) = first.first() {
        if is_punct(t, "&") {
            first = &first[1..];
        } else {
            break;
        }
    }
    if first.is_empty() {
        return LaneArg::Dynamic("<empty>".to_string());
    }
    if first.len() == 1 {
        if let Some(tok) = first[0].leaf() {
            if tok.kind == TokenKind::StrLit {
                return LaneArg::Literal(tok.text.clone());
            }
        }
    }
    // A path of idents separated by `::` ending in SCREAMING_CASE.
    let all_path = first.iter().all(|t| {
        t.leaf().is_some_and(|tok| {
            tok.kind == TokenKind::Ident || (tok.kind == TokenKind::Punct && tok.text == "::")
        })
    });
    if all_path {
        if let Some(last) = first.last().and_then(Tree::leaf) {
            let screaming = last.text.chars().any(|c| c.is_ascii_uppercase())
                && last
                    .text
                    .chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
            if last.kind == TokenKind::Ident && screaming {
                return LaneArg::Const(last.text.clone());
            }
        }
    }
    let desc = first
        .first()
        .and_then(Tree::leaf)
        .map(|t| t.text.clone())
        .unwrap_or_else(|| "<expr>".to_string());
    LaneArg::Dynamic(desc)
}

/// `use … HashMap as X;` (including inside `{…}` nests) and
/// `type X = … HashMap<…> …;`.
fn collect_aliases(level: &[Tree], ctx: &FileCtx, facts: &mut FileFacts) {
    for (i, t) in level.iter().enumerate() {
        if is_ident(t, "use") {
            // Flatten the declaration up to its `;` — nested brace groups
            // (`use x::{HashMap as A, …}`) flatten transparently.
            let end = level[i..]
                .iter()
                .position(|u| is_punct(u, ";"))
                .map_or(level.len(), |p| i + p);
            let mut leaves = Vec::new();
            flatten(&level[i..end], &mut leaves);
            for w in 0..leaves.len() {
                let root = &leaves[w];
                if root.kind == TokenKind::Ident
                    && (root.text == "HashMap" || root.text == "HashSet")
                    && leaves.get(w + 1).is_some_and(|a| a.text == "as")
                {
                    if let Some(alias) = leaves.get(w + 2).filter(|a| a.kind == TokenKind::Ident) {
                        facts.aliases.push(AliasDef {
                            alias: alias.text.clone(),
                            root: root.text.clone(),
                            rel_path: ctx.rel_path.clone(),
                            line: alias.line,
                        });
                    }
                }
            }
        } else if is_ident(t, "type") {
            let Some(name) = leaf_at(level, i + 1).filter(|n| n.kind == TokenKind::Ident) else {
                continue;
            };
            if !matches!(level.get(i + 2), Some(n) if is_punct(n, "=")) {
                continue;
            }
            let end = level[i..]
                .iter()
                .position(|u| is_punct(u, ";"))
                .map_or(level.len(), |p| i + p);
            let mut leaves = Vec::new();
            flatten(&level[i + 3..end], &mut leaves);
            if let Some(root) = leaves.iter().find(|l| {
                l.kind == TokenKind::Ident && (l.text == "HashMap" || l.text == "HashSet")
            }) {
                facts.aliases.push(AliasDef {
                    alias: name.text.clone(),
                    root: root.text.clone(),
                    rel_path: ctx.rel_path.clone(),
                    line: name.line,
                });
            }
        }
    }
}

/// `macro_rules! name { … }` definitions.
fn collect_macro_defs(level: &[Tree], ctx: &FileCtx, facts: &mut FileFacts) {
    for (i, t) in level.iter().enumerate() {
        let heads =
            is_ident(t, "macro_rules") && matches!(level.get(i + 1), Some(n) if is_punct(n, "!"));
        if !heads {
            continue;
        }
        let Some(name) = leaf_at(level, i + 2).filter(|n| n.kind == TokenKind::Ident) else {
            continue;
        };
        let Some(body) = group_at(level, i + 3, '{') else {
            continue;
        };
        facts.macros.push(MacroDef {
            name: name.text.clone(),
            rel_path: ctx.rel_path.clone(),
            line: name.line,
            panics_directly: group_body_has_panic(body),
            invokes: macro_invocations(body),
        });
    }
}

fn macro_invocations(body: &Group) -> Vec<String> {
    let mut out = Vec::new();
    walk_levels(&body.trees, false, &mut |level, _| {
        for (i, t) in level.iter().enumerate() {
            if let Some(tok) = t.leaf() {
                if tok.kind == TokenKind::Ident
                    && matches!(level.get(i + 1), Some(n) if is_punct(n, "!"))
                    && !matches!(tok.text.as_str(), "panic" | "todo" | "unimplemented")
                {
                    out.push(tok.text.clone());
                }
            }
        }
    });
    out
}

/// The joined workspace tables, built from every file's [`FileFacts`].
#[derive(Debug, Default)]
pub struct Workspace {
    pub lanes: Vec<LaneConst>,
    pub calls: Vec<StreamCall>,
    pub aliases: Vec<AliasDef>,
    /// Macro name → definition, for wrappers whose expansion panics
    /// (directly or transitively).
    pub panic_wrappers: BTreeMap<String, MacroDef>,
}

/// Join per-file facts into workspace tables.
pub fn join(all: Vec<FileFacts>) -> Workspace {
    let mut ws = Workspace::default();
    let mut macros: BTreeMap<String, MacroDef> = BTreeMap::new();
    for facts in all {
        ws.lanes.extend(facts.lanes);
        ws.calls.extend(facts.calls);
        ws.aliases.extend(facts.aliases);
        for m in facts.macros {
            macros.insert(m.name.clone(), m);
        }
    }
    // Transitive closure: a macro whose body invokes a panicking macro is
    // itself a panic wrapper.
    let mut wrappers: BTreeMap<String, MacroDef> = macros
        .values()
        .filter(|m| m.panics_directly)
        .map(|m| (m.name.clone(), m.clone()))
        .collect();
    loop {
        let mut grew = false;
        for m in macros.values() {
            if !wrappers.contains_key(&m.name)
                && m.invokes.iter().any(|callee| wrappers.contains_key(callee))
            {
                wrappers.insert(m.name.clone(), m.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    ws.panic_wrappers = wrappers;
    ws
}

/// The registry-level findings: colliding lanes and dead lanes. Violations
/// are attributed to the registry's declaration site. `hash` is injectable
/// so tests can exercise the collision detector with a weakened hash
/// (crafting a genuine 64-bit FNV-1a collision is a ~2^32-work search).
pub fn registry_violations(ws: &Workspace, hash: &dyn Fn(&str) -> u64, out: &mut Vec<Violation>) {
    // (a) two registered lanes whose stream hashes collide.
    for (i, a) in ws.lanes.iter().enumerate() {
        for b in &ws.lanes[i + 1..] {
            if hash(&a.value) == hash(&b.value) {
                out.push(Violation {
                    rule: "rng-lane",
                    rel_path: b.rel_path.clone(),
                    line: b.line,
                    message: format!(
                        "lane `{}` ({:?}) collides with lane `{}` ({:?}, {}:{}) under \
                         the FNV-1a stream hash — the two \"independent\" streams would \
                         be identical; rename one lane",
                        b.name, b.value, a.name, a.value, a.rel_path, a.line
                    ),
                });
            }
        }
    }
    // (b) registered lanes never named at any call site.
    for lane in &ws.lanes {
        let used = ws
            .calls
            .iter()
            .any(|c| matches!(&c.arg, LaneArg::Const(name) if *name == lane.name));
        if !used {
            out.push(Violation {
                rule: "rng-lane",
                rel_path: lane.rel_path.clone(),
                line: lane.line,
                message: format!(
                    "lane `{}` ({:?}) is registered but never passed to `stream(…)`/\
                     `stream_indexed(…)`/`head_indexed{{,4,8}}(…)`; delete it or wire \
                     up the component that should be drawing from it",
                    lane.name, lane.value
                ),
            });
        }
    }
}

/// Call sites naming a constant that is not in the registry. Skipped when
/// no registry was found at all (e.g. linting a lone fixture), since
/// membership is then unknowable.
pub fn unknown_lane_violations(ws: &Workspace, out: &mut Vec<Violation>) {
    if ws.lanes.is_empty() {
        return;
    }
    for call in &ws.calls {
        if let LaneArg::Const(name) = &call.arg {
            if !ws.lanes.iter().any(|l| l.name == *name) {
                out.push(Violation {
                    rule: "rng-lane",
                    rel_path: call.rel_path.clone(),
                    line: call.line,
                    message: format!(
                        "`{name}` is not declared in the `simcore::rng::lanes` registry; \
                         add it there (the registry is the collision-audit surface, so \
                         out-of-band constants defeat it)"
                    ),
                });
            }
        }
    }
}

/// Second pass over one file with the workspace tables: banned-type alias
/// usages and panic-wrapper macro invocations.
pub fn cross_check_file(
    parsed: &ParsedFile,
    ctx: &FileCtx,
    ws: &Workspace,
    out: &mut Vec<Violation>,
) {
    let flag_aliases = SIM_CRATES.contains(&ctx.crate_name.as_str()) && !ws.aliases.is_empty();
    let flag_wrappers =
        PANIC_FREE_CRATES.contains(&ctx.crate_name.as_str()) && !ws.panic_wrappers.is_empty();
    if !flag_aliases && !flag_wrappers {
        return;
    }
    scan_cross(
        &parsed.trees,
        ctx.test_target,
        ctx,
        ws,
        flag_aliases,
        flag_wrappers,
        out,
    );
}

fn scan_cross(
    level: &[Tree],
    in_test: bool,
    ctx: &FileCtx,
    ws: &Workspace,
    flag_aliases: bool,
    flag_wrappers: bool,
    out: &mut Vec<Violation>,
) {
    let flags = child_test_flags(level, in_test);
    let mut i = 0;
    while i < level.len() {
        let t = &level[i];
        // Never look inside a macro definition's own body: its `name!`
        // recursion arms and panic tokens are the definition, not a use.
        if is_ident(t, "macro_rules")
            && matches!(level.get(i + 1), Some(n) if is_punct(n, "!"))
            && group_at(level, i + 3, '{').is_some()
        {
            i += 4;
            continue;
        }
        if let Some(tok) = t.leaf() {
            if tok.kind == TokenKind::Ident {
                if flag_aliases {
                    if let Some(def) = ws.aliases.iter().find(|a| {
                        a.alias == tok.text && !(a.rel_path == ctx.rel_path && a.line == tok.line)
                    }) {
                        out.push(Violation {
                            rule: "hash-map",
                            rel_path: ctx.rel_path.clone(),
                            line: tok.line,
                            message: format!(
                                "`{}` is an alias of `{}` (declared at {}:{}); aliased \
                                 randomized-order maps are still banned in simulation \
                                 crates — use `BTreeMap`/`BTreeSet`",
                                tok.text, def.root, def.rel_path, def.line
                            ),
                        });
                    }
                }
                if flag_wrappers
                    && !flags[i]
                    && matches!(level.get(i + 1), Some(n) if is_punct(n, "!"))
                {
                    if let Some(def) = ws.panic_wrappers.get(&tok.text) {
                        out.push(Violation {
                            rule: "panic-path",
                            rel_path: ctx.rel_path.clone(),
                            line: tok.line,
                            message: format!(
                                "`{}!` expands to a panic (`macro_rules!` at {}:{}); \
                                 panic-free crates must not invoke panic-wrapper \
                                 macros — return a `platform::error::PlatformError`",
                                tok.text, def.rel_path, def.line
                            ),
                        });
                    }
                }
            }
        }
        if let Tree::Group(g) = t {
            scan_cross(
                &g.trees,
                flags[i],
                ctx,
                ws,
                flag_aliases,
                flag_wrappers,
                out,
            );
        }
        i += 1;
    }
}

/// FNV-1a 64-bit — must mirror `simcore::rng::fnv1a` exactly (the registry
/// collision audit is only sound if it uses the production hash).
pub fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parser;

    fn ctx(crate_name: &str, rel_path: &str) -> FileCtx {
        FileCtx {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            test_target: false,
        }
    }

    fn workspace_of(srcs: &[(&str, &str, &str)]) -> Workspace {
        let mut facts = Vec::new();
        for (src, krate, path) in srcs {
            let parsed = parser::parse(src).expect("test source parses");
            let mut sink = Vec::new();
            facts.push(harvest(&parsed, &ctx(krate, path), &mut sink));
        }
        join(facts)
    }

    /// Crafting a genuine 64-bit FNV-1a collision is out of reach for a
    /// unit test (~2^32 hash evaluations), so the detector is proven with
    /// an injected weakened hash; the production hash is then shown to
    /// keep the same registry collision-free.
    #[test]
    fn collision_detector_fires_under_weakened_hash_only() {
        let ws = workspace_of(&[(
            "pub mod lanes {\n    pub const A: &str = \"arrival\";\n    \
             pub const B: &str = \"faults!\";\n}\n",
            "simcore",
            "crates/simcore/src/rng.rs",
        )]);
        assert_eq!(ws.lanes.len(), 2);

        // Length-only hash: "arrival" and "faults!" collide.
        let mut weak = Vec::new();
        registry_violations(&ws, &|s: &str| s.len() as u64, &mut weak);
        let collisions: Vec<_> = weak
            .iter()
            .filter(|v| v.message.contains("collides"))
            .collect();
        assert_eq!(collisions.len(), 1, "{weak:?}");
        assert!(collisions[0].message.contains("`B`"), "{collisions:?}");
        assert!(collisions[0].message.contains("`A`"), "{collisions:?}");

        // The production hash separates them (dead-lane findings remain —
        // nothing calls these lanes in this two-line workspace).
        let mut real = Vec::new();
        registry_violations(&ws, &fnv1a, &mut real);
        assert!(
            real.iter().all(|v| !v.message.contains("collides")),
            "{real:?}"
        );
        assert_eq!(real.len(), 2, "both lanes are dead here: {real:?}");
    }

    #[test]
    fn fnv1a_matches_the_production_constants() {
        // The FNV-1a offset basis is the hash of the empty string; any
        // drift from `simcore::rng::fnv1a` breaks the audit's soundness.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a("exec-service"), fnv1a("exec-service2"));
    }

    #[test]
    fn const_lane_args_are_resolved_against_the_registry() {
        let ws = workspace_of(&[
            (
                "pub mod lanes {\n    pub const EXEC: &str = \"exec\";\n}\n",
                "simcore",
                "crates/simcore/src/rng.rs",
            ),
            (
                "fn f(s: &RngStreams) {\n    s.stream(lanes::EXEC);\n    \
                 s.stream_indexed(lanes::GHOST, 3);\n}\n",
                "platform",
                "crates/platform/src/f.rs",
            ),
        ]);
        let mut out = Vec::new();
        registry_violations(&ws, &fnv1a, &mut out);
        unknown_lane_violations(&ws, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("GHOST"), "{out:?}");
        assert_eq!(out[0].rel_path, "crates/platform/src/f.rs");
    }
}
