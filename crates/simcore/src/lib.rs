//! Deterministic discrete-event simulation (DES) engine.
//!
//! This is the substrate underneath the serverless platform simulator
//! (`propack-platform`) and the FuncX on-prem simulator (`propack-funcx`).
//! It provides:
//!
//! * a simulated clock and an event queue with **deterministic tie-breaking**
//!   ([`Sim`]): events at equal timestamps fire in scheduling order, so every
//!   run with the same seed reproduces bit-identical timelines;
//! * queueing resources ([`resource::FifoResource`],
//!   [`resource::BandwidthPipe`], [`resource::MultiServer`]) that model the
//!   serialization points a serverless control plane has — a central
//!   scheduler, an image-build server, a shipping fabric;
//! * seeded, stream-split random number generation ([`rng::RngStreams`]) so
//!   that adding noise to one component never perturbs another component's
//!   draw sequence.
//!
//! The engine is intentionally synchronous and single-threaded: a burst of
//! 5 000 concurrent function invocations is a few tens of thousands of
//! events, which simulates in well under a millisecond. Parallelism in this
//! workspace lives at the *experiment* level (independent simulations on
//! different threads), where it is embarrassingly parallel and deterministic.

pub mod engine;
pub mod resource;
pub mod rng;
pub mod time;
pub mod trace;

pub use engine::Sim;
pub use resource::{BandwidthPipe, FifoResource, MultiServer};
pub use rng::RngStreams;
pub use time::SimTime;
pub use trace::{TraceEvent, Tracer};
