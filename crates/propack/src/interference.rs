//! The interference model: Eq. 1 of the paper.
//!
//! `ET(P) = e^{M_func·α·P}` — the execution time of a function instance
//! grows exponentially with the packing degree, with an application-
//! specific rate proportional to the function's memory footprint. ProPack
//! fits this by log-linear least squares over profiling samples at a subset
//! of packing degrees (the curve is monotone, so alternate degrees suffice
//! — §2.1's sampling trick, implemented in [`crate::profiler`]).

use crate::ModelError;
use propack_stats::models::{fit, ModelKind};
use serde::{Deserialize, Serialize};

/// One profiling observation: mean instance execution time at a degree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceSample {
    /// Packing degree the instance ran at.
    pub packing_degree: u32,
    /// Observed mean execution time (seconds).
    pub exec_secs: f64,
}

/// Fitted Eq. 1: `ET(P) = base · e^{rate·P}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    /// Multiplicative constant `A = e^{intercept}`.
    pub base: f64,
    /// Exponential rate `k = M_func · α` per unit packing degree.
    pub rate: f64,
    /// Function memory footprint used to derive α (GB).
    pub mem_gb: f64,
    /// RMSE of the fit on the training samples.
    pub rmse: f64,
}

impl InterferenceModel {
    /// Fit the model from profiling samples (needs ≥ 2 distinct degrees).
    pub fn fit(samples: &[InterferenceSample], mem_gb: f64) -> Result<Self, ModelError> {
        if samples.len() < 2 {
            return Err(ModelError::NotEnoughSamples {
                needed: 2,
                got: samples.len(),
            });
        }
        let xs: Vec<f64> = samples.iter().map(|s| s.packing_degree as f64).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.exec_secs).collect();
        let f = fit(ModelKind::Exponential, &xs, &ys)?;
        Ok(InterferenceModel {
            base: f.params[0],
            rate: f.params[1],
            mem_gb,
            rmse: f.rmse,
        })
    }

    /// Predicted execution time at packing degree `p` (Eq. 1).
    pub fn exec_secs(&self, p: u32) -> f64 {
        self.base * (self.rate * p as f64).exp()
    }

    /// The paper's α: the rate normalized by the memory footprint.
    pub fn alpha(&self) -> f64 {
        if self.mem_gb > 0.0 {
            self.rate / self.mem_gb
        } else {
            self.rate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples_from_curve(base: f64, rate: f64, degrees: &[u32]) -> Vec<InterferenceSample> {
        degrees
            .iter()
            .map(|&p| InterferenceSample {
                packing_degree: p,
                exec_secs: base * (rate * p as f64).exp(),
            })
            .collect()
    }

    #[test]
    fn recovers_planted_exponential() {
        let s = samples_from_curve(95.0, 0.05, &[1, 3, 5, 7, 9, 11]);
        let m = InterferenceModel::fit(&s, 0.25).unwrap();
        assert!((m.base - 95.0).abs() < 1e-6);
        assert!((m.rate - 0.05).abs() < 1e-9);
        assert!((m.alpha() - 0.2).abs() < 1e-8);
        assert!(m.rmse < 1e-6);
    }

    #[test]
    fn alternate_degree_sampling_suffices() {
        // The §2.1 trick: fitting on every other degree predicts the
        // skipped degrees accurately because the curve is monotone
        // exponential.
        let all: Vec<u32> = (1..=15).collect();
        let odd: Vec<u32> = all.iter().copied().filter(|p| p % 2 == 1).collect();
        let s = samples_from_curve(100.0, 0.09, &odd);
        let m = InterferenceModel::fit(&s, 0.64).unwrap();
        for &p in &all {
            let want = 100.0 * (0.09 * p as f64).exp();
            assert!((m.exec_secs(p) - want).abs() / want < 1e-9, "degree {p}");
        }
    }

    #[test]
    fn prediction_monotone_in_degree() {
        let s = samples_from_curve(100.0, 0.07, &[1, 2, 4, 8]);
        let m = InterferenceModel::fit(&s, 0.33).unwrap();
        let mut prev = 0.0;
        for p in 1..=30 {
            let t = m.exec_secs(p);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn noisy_samples_fit_within_tolerance() {
        let mut s = samples_from_curve(100.0, 0.06, &[1, 3, 5, 7, 9, 11, 13]);
        for (i, sample) in s.iter_mut().enumerate() {
            sample.exec_secs *= 1.0 + 0.015 * if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let m = InterferenceModel::fit(&s, 0.25).unwrap();
        assert!((m.rate - 0.06).abs() < 0.01, "rate {}", m.rate);
    }

    #[test]
    fn too_few_samples_rejected() {
        let s = samples_from_curve(100.0, 0.05, &[1]);
        assert!(matches!(
            InterferenceModel::fit(&s, 0.25),
            Err(ModelError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn zero_mem_alpha_falls_back_to_rate() {
        let s = samples_from_curve(10.0, 0.1, &[1, 2, 3]);
        let m = InterferenceModel::fit(&s, 0.0).unwrap();
        assert_eq!(m.alpha(), m.rate);
    }
}
