//! The simlint rule set.
//!
//! Seven rules, each scoped to the crates where its invariant matters (see
//! DESIGN.md §7, "Determinism policy & simlint"):
//!
//! | rule        | scope                                   | invariant |
//! |-------------|-----------------------------------------|-----------|
//! | `hash-map`  | simulation crates                       | no `HashMap`/`HashSet`: iteration order must be deterministic |
//! | `wall-clock`| all crates except `executor`, `sweep`   | no `Instant`/`SystemTime`/entropy-seeded RNG: virtual time and seeded streams only |
//! | `panic-path`| `simcore`, `platform`, `propack` (non-test) | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`: route errors through `platform::error` |
//! | `float-eq`  | `stats`, `propack` (non-test)           | no `==`/`!=` against float literals: use tolerances or document exact-zero guards |
//! | `const-doc` | `platform::profile`                     | every `pub const` cites its paper provenance (Fig./Eq./Table/§) |
//! | `thread-spawn` | all crates except `sweep`, `fleet`, `executor` | no `thread::spawn`/`thread::scope`: host concurrency lives in the sweep engine, the fleet shard phase, and the kernel harness |
//! | `fault-rng` | `*fault*.rs`/`*trace*.rs` in simulation crates | no direct RNG construction: fault and arrival draws come only from the seeded `RngStreams` lane tree |
//! | `event-alloc` | simulation crates except `simcore` (non-test) | no `Box::new` inside `schedule_*(…)` calls: hot paths use the typed pooled event queue; the boxed-closure path is simcore's compatibility fallback |
//!
//! Escape hatch: `// simlint: allow(<rule>): "justification"` on the same
//! line (trailing) or the line above. The justification string is mandatory;
//! a bare `allow` is itself reported.

use crate::lexer::{lex, AllowDirective, Token, TokenKind};

/// Crates whose iteration order feeds simulated outcomes.
pub const SIM_CRATES: &[&str] = &[
    "simcore",
    "platform",
    "funcx",
    "workloads",
    "propack",
    "baselines",
    "orchestrator",
    "replay",
    "fleet",
    "workflow",
];

/// Crates whose non-test library code must be panic-free.
pub const PANIC_FREE_CRATES: &[&str] = &["simcore", "platform", "propack"];

/// Crates where exact float comparison is suspect.
pub const FLOAT_EQ_CRATES: &[&str] = &["stats", "propack"];

/// Crates allowed to touch wall-clock time and OS entropy: `executor` runs
/// real kernels on real hardware; `sweep` measures host wall-time per grid
/// cell (timing is reported, never rendered into sweep output); `bench`
/// times the kernel itself for `BENCH_kernel.json`; `xtask` is tooling, not
/// simulation.
pub const WALL_CLOCK_EXEMPT: &[&str] = &["executor", "sweep", "bench", "xtask"];

/// Crates allowed to create OS threads: `sweep` owns the work-stealing grid
/// fan-out, `fleet` shards its per-epoch burst phase the same way (host
/// threads only ever execute pure jobs against an immutable platform —
/// every mutation of simulated state happens on the serial phases, so
/// outcomes cannot depend on host scheduling), `executor` drives real
/// kernels, `xtask` is tooling. Everything else stays single-threaded.
pub const THREAD_EXEMPT: &[&str] = &["executor", "sweep", "xtask", "fleet"];

/// All rule names, for `allow(...)` validation. The last four are AST-only
/// (`crates/xtask/src/ast/`); they are listed here so `allow(...)`
/// directives naming them stay valid when a file falls back to the lexer
/// path.
pub const RULES: &[&str] = &[
    "hash-map",
    "wall-clock",
    "panic-path",
    "float-eq",
    "const-doc",
    "thread-spawn",
    "fault-rng",
    "event-alloc",
    "rng-lane",
    "unstable-sort-float",
    "as-truncation",
    "stale-allow",
];

/// Wall-clock / entropy identifiers banned outside `executor`.
const WALL_CLOCK_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "from_os_rng",
];

/// Substrings accepted as a paper-provenance citation in a doc comment.
const CITATION_MARKERS: &[&str] = &["Fig.", "Eq.", "Table", "§"];

/// Direct RNG construction banned in fault-lane code: fault draws must come
/// from the burst's seeded `RngStreams` tree so they replay bit-identically
/// and stay independent of the pre-existing timeline streams.
const FAULT_RNG_IDENTS: &[&str] = &[
    "ChaCha8Rng",
    "ChaCha12Rng",
    "ChaCha20Rng",
    "StdRng",
    "SmallRng",
    "seed_from_u64",
    "from_seed",
];

/// Where a file sits in the workspace, for rule scoping.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Crate the file belongs to (directory name under `crates/`), or the
    /// umbrella package name for root `src/` and `tests/`.
    pub crate_name: String,
    /// Path relative to the workspace root, for diagnostics.
    pub rel_path: String,
    /// True for integration-test and bench targets (`tests/`, `benches/`):
    /// the whole file is test code.
    pub test_target: bool,
}

impl FileCtx {
    /// Whether the `const-doc` rule applies to this file.
    fn wants_const_doc(&self) -> bool {
        self.crate_name == "platform" && self.rel_path.ends_with("profile.rs")
    }

    /// Whether the `event-alloc` rule applies: simulation crates other than
    /// `simcore` itself — the boxed-closure `schedule`/`schedule_in` fallback
    /// is implemented (and legitimately exercised) there.
    fn wants_event_alloc(&self) -> bool {
        SIM_CRATES.contains(&self.crate_name.as_str()) && self.crate_name != "simcore"
    }

    /// Whether the `fault-rng` rule applies: fault-lane and arrival-trace
    /// source files in the simulation crates (matched on the file name, so
    /// `fault.rs`, `faults.rs`, a future `fault_model.rs`, and the replay
    /// crate's `trace.rs` generators are all covered — both draw randomness
    /// that must come exclusively from seeded `RngStreams` lanes).
    fn wants_fault_rng(&self) -> bool {
        SIM_CRATES.contains(&self.crate_name.as_str())
            && self
                .rel_path
                .rsplit('/')
                .next()
                .is_some_and(|name| name.contains("fault") || name.contains("trace"))
    }
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub rel_path: String,
    pub line: u32,
    pub message: String,
}

impl Violation {
    /// Render in rustc style: `error[simlint::rule]: msg\n  --> path:line`.
    pub fn render(&self) -> String {
        format!(
            "error[simlint::{}]: {}\n  --> {}:{}\n",
            self.rule, self.message, self.rel_path, self.line
        )
    }
}

/// Lint one source file. Pure: all context arrives through `ctx`, so unit
/// tests can lint fixture strings under any crate identity.
pub fn lint_file(src: &str, ctx: &FileCtx) -> Vec<Violation> {
    let lexed = lex(src);
    let test_lines = test_region_lines(&lexed.tokens, ctx.test_target);
    let mut raw: Vec<Violation> = Vec::new();

    check_hash_map(&lexed.tokens, ctx, &mut raw);
    check_wall_clock(&lexed.tokens, ctx, &mut raw);
    check_panic_path(&lexed.tokens, ctx, &test_lines, &mut raw);
    check_float_eq(&lexed.tokens, ctx, &test_lines, &mut raw);
    check_const_doc(&lexed.tokens, ctx, &mut raw);
    check_thread_spawn(&lexed.tokens, ctx, &mut raw);
    check_fault_rng(&lexed.tokens, ctx, &mut raw);
    check_event_alloc(&lexed.tokens, ctx, &test_lines, &mut raw);

    apply_allows(raw, &lexed.allows, ctx)
}

/// Map token stream to the set of lines inside `#[cfg(test)]`-gated items
/// (or the whole file for test targets). Brace-matched from the attribute's
/// item; `#[test]` fns live inside `#[cfg(test)] mod tests` in this repo,
/// so attribute-level tracking is sufficient.
fn test_region_lines(tokens: &[Token], whole_file: bool) -> TestLines {
    if whole_file {
        return TestLines::All;
    }
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Find the gated item's opening brace, then its matching close.
            let mut j = i + 7; // past `# [ cfg ( test ) ]`
            while j < tokens.len() && !is_punct(&tokens[j], "{") {
                // A `;`-terminated item (e.g. `#[cfg(test)] use …;`) has no
                // braced body; nothing to exempt.
                if is_punct(&tokens[j], ";") {
                    break;
                }
                j += 1;
            }
            if j < tokens.len() && is_punct(&tokens[j], "{") {
                let start_line = tokens[i].line;
                let mut depth = 0i32;
                while j < tokens.len() {
                    if is_punct(&tokens[j], "{") {
                        depth += 1;
                    } else if is_punct(&tokens[j], "}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let end_line = tokens.get(j).map_or(u32::MAX, |t| t.line);
                ranges.push((start_line, end_line));
                i = j;
            }
        }
        i += 1;
    }
    TestLines::Ranges(ranges)
}

enum TestLines {
    All,
    Ranges(Vec<(u32, u32)>),
}

impl TestLines {
    fn contains(&self, line: u32) -> bool {
        match self {
            TestLines::All => true,
            TestLines::Ranges(rs) => rs.iter().any(|&(a, b)| a <= line && line <= b),
        }
    }
}

/// Matches the token sequence `# [ cfg ( test ) ]` (also as part of
/// `cfg(all(test, …))` — any `cfg` attribute whose args mention `test`).
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    if !(is_punct(&tokens[i], "#")
        && matches!(tokens.get(i + 1), Some(t) if is_punct(t, "["))
        && matches!(tokens.get(i + 2), Some(t) if is_ident(t, "cfg"))
        && matches!(tokens.get(i + 3), Some(t) if is_punct(t, "(")))
    {
        return false;
    }
    let mut depth = 1i32;
    let mut j = i + 4;
    while let Some(t) = tokens.get(j) {
        if is_punct(t, "(") {
            depth += 1;
        } else if is_punct(t, ")") {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if is_ident(t, "test") {
            return true;
        }
        j += 1;
    }
    false
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

fn check_hash_map(tokens: &[Token], ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !SIM_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for t in tokens {
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(Violation {
                rule: "hash-map",
                rel_path: ctx.rel_path.clone(),
                line: t.line,
                message: format!(
                    "`{}` iterates in randomized order; simulation crates must use \
                     `BTreeMap`/`BTreeSet` so replays are bit-identical",
                    t.text
                ),
            });
        }
    }
}

fn check_wall_clock(tokens: &[Token], ctx: &FileCtx, out: &mut Vec<Violation>) {
    if WALL_CLOCK_EXEMPT.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let banned = WALL_CLOCK_IDENTS.contains(&t.text.as_str())
            // `rand::random()` / `rand::rng()` pull from OS entropy.
            || ((t.text == "random" || t.text == "rng")
                && i >= 2
                && is_punct(&tokens[i - 1], "::")
                && is_ident(&tokens[i - 2], "rand"));
        if banned {
            out.push(Violation {
                rule: "wall-clock",
                rel_path: ctx.rel_path.clone(),
                line: t.line,
                message: format!(
                    "`{}` reads wall-clock time or OS entropy; outside `crates/executor` \
                     use virtual `SimTime` and seeded `RngStreams`",
                    t.text
                ),
            });
        }
    }
}

fn check_panic_path(
    tokens: &[Token],
    ctx: &FileCtx,
    test_lines: &TestLines,
    out: &mut Vec<Violation>,
) {
    if !PANIC_FREE_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || test_lines.contains(t.line) {
            continue;
        }
        // `.unwrap(` / `.expect(` method calls.
        let method = (t.text == "unwrap" || t.text == "expect")
            && i >= 1
            && is_punct(&tokens[i - 1], ".")
            && matches!(tokens.get(i + 1), Some(n) if is_punct(n, "("));
        // `panic!` / `todo!` / `unimplemented!` macro invocations.
        let mac = matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
            && matches!(tokens.get(i + 1), Some(n) if is_punct(n, "!"));
        if method || mac {
            let spelled = if method {
                format!(".{}()", t.text)
            } else {
                format!("{}!", t.text)
            };
            out.push(Violation {
                rule: "panic-path",
                rel_path: ctx.rel_path.clone(),
                line: t.line,
                message: format!(
                    "`{spelled}` can abort a simulation mid-burst; return a \
                     `platform::error::PlatformError` (or restructure) instead"
                ),
            });
        }
    }
}

fn check_float_eq(
    tokens: &[Token],
    ctx: &FileCtx,
    test_lines: &TestLines,
    out: &mut Vec<Violation>,
) {
    if !FLOAT_EQ_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if !(t.kind == TokenKind::Punct && (t.text == "==" || t.text == "!="))
            || test_lines.contains(t.line)
        {
            continue;
        }
        let float_adjacent = (i >= 1 && tokens[i - 1].kind == TokenKind::FloatLit)
            || matches!(tokens.get(i + 1), Some(n) if n.kind == TokenKind::FloatLit);
        if float_adjacent {
            out.push(Violation {
                rule: "float-eq",
                rel_path: ctx.rel_path.clone(),
                line: t.line,
                message: format!(
                    "exact `{}` against a float literal; compare with a tolerance, or \
                     annotate a deliberate exact-zero guard",
                    t.text
                ),
            });
        }
    }
}

fn check_const_doc(tokens: &[Token], ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.wants_const_doc() {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if !is_ident(t, "const") {
            continue;
        }
        // Only `pub const` (any visibility form: pub, pub(crate), …).
        let is_pub = (i >= 1 && is_ident(&tokens[i - 1], "pub"))
            || (i >= 4 && is_punct(&tokens[i - 1], ")") && is_ident(&tokens[i - 4], "pub"));
        if !is_pub {
            continue;
        }
        let name = match tokens.get(i + 1) {
            Some(n) if n.kind == TokenKind::Ident => n.text.clone(),
            _ => continue, // `pub const fn` or malformed
        };
        if name == "fn" {
            continue;
        }
        // Walk back over the visibility tokens to the token preceding the
        // item; it must be a doc comment carrying a citation.
        let mut j = i;
        while j > 0
            && (is_ident(&tokens[j - 1], "pub")
                || is_ident(&tokens[j - 1], "crate")
                || is_ident(&tokens[j - 1], "super")
                || is_punct(&tokens[j - 1], "(")
                || is_punct(&tokens[j - 1], ")"))
        {
            j -= 1;
        }
        // A doc block lexes as one token per `///` line; accept a citation
        // anywhere in the contiguous run of doc lines above the item.
        let mut cited = false;
        while j > 0 && tokens[j - 1].kind == TokenKind::DocComment {
            cited |= CITATION_MARKERS
                .iter()
                .any(|m| tokens[j - 1].text.contains(m));
            j -= 1;
        }
        if !cited {
            out.push(Violation {
                rule: "const-doc",
                rel_path: ctx.rel_path.clone(),
                line: t.line,
                message: format!(
                    "calibration constant `{name}` has no provenance doc comment; cite \
                     the paper figure/equation/table it was read from (e.g. `/// Fig. 4`)"
                ),
            });
        }
    }
}

fn check_thread_spawn(tokens: &[Token], ctx: &FileCtx, out: &mut Vec<Violation>) {
    if THREAD_EXEMPT.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        // `thread::spawn` / `thread::scope` (also via `std::thread::…`).
        // `scope.spawn(…)` inside the closure is not matched separately: the
        // enclosing `thread::scope` call is already the violation.
        let spawns = t.kind == TokenKind::Ident
            && (t.text == "spawn" || t.text == "scope")
            && i >= 2
            && is_punct(&tokens[i - 1], "::")
            && is_ident(&tokens[i - 2], "thread");
        if spawns {
            out.push(Violation {
                rule: "thread-spawn",
                rel_path: ctx.rel_path.clone(),
                line: t.line,
                message: format!(
                    "`thread::{}` creates OS threads outside the sweep engine; run \
                     parallel grids through `propack_sweep::SweepRunner` (host threads \
                     belong to `crates/sweep` and `crates/executor` only)",
                    t.text
                ),
            });
        }
    }
}

fn check_fault_rng(tokens: &[Token], ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.wants_fault_rng() {
        return;
    }
    for t in tokens {
        if t.kind == TokenKind::Ident && FAULT_RNG_IDENTS.contains(&t.text.as_str()) {
            out.push(Violation {
                rule: "fault-rng",
                rel_path: ctx.rel_path.clone(),
                line: t.line,
                message: format!(
                    "`{}` constructs an RNG directly in fault-lane code; draw from the \
                     burst's seeded `RngStreams` lanes (`stream_indexed(\"fault-…\", …)`) \
                     so fault draws replay bit-identically at any thread count",
                    t.text
                ),
            });
        }
    }
}

/// Flag `Box::new` inside the argument list of any `schedule_*(…)` call:
/// every boxed closure handed to the scheduler is a heap allocation on the
/// kernel's hot path. Simulation crates route events through the typed,
/// pooled queue (`EventState::Event` + `schedule_event`/`schedule_batch`);
/// the closure form survives in `simcore` only as a compatibility fallback.
fn check_event_alloc(
    tokens: &[Token],
    ctx: &FileCtx,
    test_lines: &TestLines,
    out: &mut Vec<Violation>,
) {
    if !ctx.wants_event_alloc() {
        return;
    }
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        let is_schedule_call = t.kind == TokenKind::Ident
            && t.text.starts_with("schedule")
            && matches!(tokens.get(i + 1), Some(n) if is_punct(n, "("));
        if !is_schedule_call {
            i += 1;
            continue;
        }
        let callee = t.text.clone();
        // Paren-match the call's argument span.
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < tokens.len() {
            if is_punct(&tokens[j], "(") {
                depth += 1;
            } else if is_punct(&tokens[j], ")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth > 0
                && is_ident(&tokens[j], "Box")
                && matches!(tokens.get(j + 1), Some(n) if is_punct(n, "::"))
                && matches!(tokens.get(j + 2), Some(n) if is_ident(n, "new"))
                && !test_lines.contains(tokens[j].line)
            {
                out.push(Violation {
                    rule: "event-alloc",
                    rel_path: ctx.rel_path.clone(),
                    line: tokens[j].line,
                    message: format!(
                        "`Box::new` inside `{callee}(…)` heap-allocates a closure per \
                         event; define a typed event (`EventState::Event`) and use \
                         `schedule_event`/`schedule_batch` — the boxed-closure form is \
                         simcore's compatibility fallback, not the hot path"
                    ),
                });
            }
            j += 1;
        }
        i = j.max(i + 1);
    }
}

/// Filter violations through `// simlint: allow(...)` directives, and emit
/// violations for malformed directives (unknown rule, missing justification).
fn apply_allows(raw: Vec<Violation>, allows: &[AllowDirective], ctx: &FileCtx) -> Vec<Violation> {
    let mut out: Vec<Violation> = Vec::new();
    for d in allows {
        if !RULES.contains(&d.rule.as_str()) {
            out.push(Violation {
                rule: "bad-allow",
                rel_path: ctx.rel_path.clone(),
                line: d.line,
                message: format!(
                    "`allow({})` names no simlint rule; known rules: {}",
                    d.rule,
                    RULES.join(", ")
                ),
            });
        } else if d.justification.is_none() {
            out.push(Violation {
                rule: "bad-allow",
                rel_path: ctx.rel_path.clone(),
                line: d.line,
                message: format!(
                    "`allow({})` requires a justification: \
                     `// simlint: allow({}): \"why this is sound\"`",
                    d.rule, d.rule
                ),
            });
        }
    }
    for v in raw {
        let suppressed = allows.iter().any(|d| {
            d.rule == v.rule
                && d.justification.is_some()
                && if d.trailing {
                    d.line == v.line
                } else {
                    d.line + 1 == v.line
                }
        });
        if !suppressed {
            out.push(v);
        }
    }
    out.sort_by(|a, b| (&a.rel_path, a.line).cmp(&(&b.rel_path, b.line)));
    out
}
