//! Workspace traversal: find every `.rs` source that simlint should see and
//! attach the [`FileCtx`] the rules need (owning crate, test-target flag).

use crate::rules::FileCtx;
use std::path::{Path, PathBuf};

/// A source file plus its lint context.
#[derive(Debug)]
pub struct SourceFile {
    pub abs_path: PathBuf,
    pub ctx: FileCtx,
}

/// Directories never descended into: build output, VCS metadata, the lint
/// fixtures themselves (which contain deliberate violations), and the
/// offline dependency stubs (vendored third-party API shells, not
/// simulation code).
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "fixtures", "offline"];

/// Collect all lintable `.rs` files under `root`, deterministically ordered.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    visit(root, root, &mut files)?;
    files.sort_by(|a, b| a.ctx.rel_path.cmp(&b.ctx.rel_path));
    Ok(files)
}

fn visit(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                visit(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                abs_path: path,
                ctx: classify(&rel),
            });
        }
    }
    Ok(())
}

/// Derive the owning crate and target kind from a workspace-relative path.
///
/// `crates/<name>/…` belongs to `<name>`; anything else (root `src/`,
/// `tests/`, stray scripts) belongs to the umbrella package. Files under a
/// `tests/` or `benches/` directory are whole-file test targets.
fn classify(rel_path: &str) -> FileCtx {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let crate_name = match parts.as_slice() {
        ["crates", name, ..] => (*name).to_string(),
        _ => "propack-repro".to_string(),
    };
    let test_target = parts
        .iter()
        .rev()
        .skip(1) // the file name itself
        .any(|p| *p == "tests" || *p == "benches");
    FileCtx {
        crate_name,
        rel_path: rel_path.to_string(),
        test_target,
    }
}
