//! Heterogeneous packing: planning mixed-application instances.
//!
//! §5 of the paper flags this as the natural extension ProPack does not yet
//! ship: *"packing functions of different characteristics present new
//! modeling challenges — ProPack can be extended to account for those."*
//! This module is that extension, restricted (as the paper's security
//! discussion requires) to a **single user** co-packing their own
//! applications.
//!
//! ## Model
//!
//! The platform's mixed mechanism (`propack_platform::mixed`) says a
//! type-`i` function co-resident with `n_j` copies of each application `j`
//! runs at
//!
//! ```text
//! ET_i = isolated_i · exp( Σ_j n_j·rate_j − rate_i )
//! ```
//!
//! With Eq. 1's fitted form `ET_i(P) = base_i·e^{rate_i·P}` (so
//! `isolated_i = base_i·e^{rate_i}`), this collapses to the pleasantly
//! symmetric prediction
//!
//! ```text
//! ET_i(mix) = base_i · exp( n_a·rate_a + n_b·rate_b )
//! ```
//!
//! which degenerates to the homogeneous Eq. 1 when only one application is
//! present — meaning the *existing* per-app profiling campaigns are enough
//! to plan mixes; no joint profiling is required.

use crate::interference::InterferenceModel;
use crate::scaling::ScalingModel;
use serde::{Deserialize, Serialize};

/// One application's demand in a mixed-planning problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppDemand {
    /// Application name (for reporting).
    pub name: String,
    /// Fitted Eq. 1 for this application.
    pub interference: InterferenceModel,
    /// Requested concurrency (functions to run).
    pub concurrency: u32,
    /// Per-function memory (GB).
    pub mem_gb: f64,
}

/// A mixed-instance plan for two applications.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixedPlan {
    /// Copies of app A per instance.
    pub n_a: u32,
    /// Copies of app B per instance.
    pub n_b: u32,
    /// Instances to spawn.
    pub instances: u32,
    /// Predicted execution time of an A function (seconds).
    pub exec_a_secs: f64,
    /// Predicted execution time of a B function (seconds).
    pub exec_b_secs: f64,
    /// Predicted total service time (slowest app + scaling).
    pub service_secs: f64,
    /// Predicted compute expense (USD).
    pub expense_usd: f64,
}

/// Predicted execution time of `which` (0 = A, 1 = B) inside an
/// `(n_a, n_b)` mix.
pub fn exec_in_mix(
    a: &InterferenceModel,
    b: &InterferenceModel,
    n_a: u32,
    n_b: u32,
    which: usize,
) -> f64 {
    let pressure = n_a as f64 * a.rate + n_b as f64 * b.rate;
    let base = if which == 0 { a.base } else { b.base };
    base * pressure.exp()
}

/// Search mixed compositions for two co-packed applications.
///
/// Both apps spawn inside the **same** instance fleet; the fleet size is
/// driven by the app needing more instances:
/// `instances = max(ceil(C_a/n_a), ceil(C_b/n_b))`. The objective is a
/// scale-free equal-weight joint score `ln(service) + ln(expense)`
/// (monotone in both, so single-objective orderings are preserved).
///
/// Returns `None` only when even `(1, 1)` violates the memory cap.
pub fn plan_mixed(
    a: &AppDemand,
    b: &AppDemand,
    scaling: &ScalingModel,
    platform_mem_gb: f64,
    usd_per_instance_sec: f64,
) -> Option<MixedPlan> {
    let mut best: Option<MixedPlan> = None;
    let max_a = (platform_mem_gb / a.mem_gb).floor() as u32;
    for n_a in 1..=max_a.max(1) {
        let mem_left = platform_mem_gb - n_a as f64 * a.mem_gb;
        if mem_left < b.mem_gb {
            continue;
        }
        let max_b = (mem_left / b.mem_gb).floor() as u32;
        for n_b in 1..=max_b {
            let instances = (a.concurrency.div_ceil(n_a)).max(b.concurrency.div_ceil(n_b));
            let exec_a = exec_in_mix(&a.interference, &b.interference, n_a, n_b, 0);
            let exec_b = exec_in_mix(&a.interference, &b.interference, n_a, n_b, 1);
            let slowest = exec_a.max(exec_b);
            let service = slowest + scaling.scaling_secs(instances as f64);
            let expense = slowest * instances as f64 * usd_per_instance_sec;
            let candidate = MixedPlan {
                n_a,
                n_b,
                instances,
                exec_a_secs: exec_a,
                exec_b_secs: exec_b,
                service_secs: service,
                expense_usd: expense,
            };
            let better = match &best {
                None => true,
                Some(cur) => score(service, expense) < score(cur.service_secs, cur.expense_usd),
            };
            if better {
                best = Some(candidate);
            }
        }
    }
    best
}

fn score(service: f64, expense: f64) -> f64 {
    service.ln() + expense.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(base_isolated: f64, rate: f64, mem: f64) -> InterferenceModel {
        // Eq. 1 form: ET(P) = base·e^{rate·P} with ET(1) = base_isolated.
        InterferenceModel {
            base: base_isolated / rate.exp(),
            rate,
            mem_gb: mem,
            rmse: 0.0,
        }
    }

    fn demand(name: &str, base: f64, rate: f64, mem: f64, c: u32) -> AppDemand {
        AppDemand {
            name: name.into(),
            interference: model(base, rate, mem),
            concurrency: c,
            mem_gb: mem,
        }
    }

    fn scaling() -> ScalingModel {
        ScalingModel {
            beta1: 2.25e-5,
            beta2: 0.2,
            beta3: 2.0,
            r_squared: 1.0,
        }
    }

    #[test]
    fn mix_prediction_degenerates_to_homogeneous() {
        let a = model(100.0, 0.05, 0.25);
        let b = model(80.0, 0.09, 0.64);
        for n in 1..=10u32 {
            let mixed = exec_in_mix(&a, &b, n, 0, 0);
            let homo = a.exec_secs(n);
            assert!((mixed - homo).abs() / homo < 1e-12, "n={n}");
        }
    }

    #[test]
    fn cross_pressure_slows_both_apps() {
        let a = model(100.0, 0.05, 0.25);
        let b = model(80.0, 0.09, 0.64);
        let a_alone = exec_in_mix(&a, &b, 4, 0, 0);
        let a_mixed = exec_in_mix(&a, &b, 4, 3, 0);
        assert!(a_mixed > a_alone);
        let b_alone = exec_in_mix(&a, &b, 0, 3, 1);
        let b_mixed = exec_in_mix(&a, &b, 4, 3, 1);
        assert!(b_mixed > b_alone);
    }

    #[test]
    fn plan_respects_memory_cap() {
        let a = demand("a", 100.0, 0.05, 0.25, 2000);
        let b = demand("b", 80.0, 0.09, 0.64, 2000);
        let plan = plan_mixed(&a, &b, &scaling(), 10.0, 1.67e-4).unwrap();
        assert!(plan.n_a as f64 * 0.25 + plan.n_b as f64 * 0.64 <= 10.0 + 1e-9);
        assert!(plan.n_a >= 1 && plan.n_b >= 1);
        assert!(plan.instances >= 1);
    }

    #[test]
    fn plan_packs_more_at_higher_concurrency() {
        let mk = |c| {
            let a = demand("a", 100.0, 0.05, 0.25, c);
            let b = demand("b", 80.0, 0.09, 0.64, c);
            plan_mixed(&a, &b, &scaling(), 10.0, 1.67e-4).unwrap()
        };
        let low = mk(200);
        let high = mk(5000);
        assert!(
            high.n_a + high.n_b >= low.n_a + low.n_b,
            "total degree should not shrink with concurrency: {low:?} vs {high:?}"
        );
    }

    #[test]
    fn oversized_apps_unplannable() {
        let a = demand("a", 100.0, 0.05, 6.0, 100);
        let b = demand("b", 80.0, 0.09, 6.0, 100);
        assert!(plan_mixed(&a, &b, &scaling(), 10.0, 1.67e-4).is_none());
    }

    #[test]
    fn plan_predictions_match_platform_mechanism() {
        // End-to-end consistency: predictions from fitted models must match
        // the platform's mixed-instance execution times.
        use propack_platform::mixed::{mixed_exec_secs, MixSpec};
        use propack_platform::profile::PlatformProfile;
        use propack_platform::WorkProfile;

        let wa = WorkProfile::synthetic("a", 0.25, 100.0).with_contention(0.2); // rate .05
        let wb = WorkProfile::synthetic("b", 0.64, 80.0).with_contention(0.1406); // rate .09
        let inst = PlatformProfile::aws_lambda().instance;

        let ma = model(100.0, 0.05, 0.25);
        let mb = model(80.0, 0.08998, 0.64);
        let mix = MixSpec::pair((wa, 4), (wb, 2));
        // Compare only interference factors (platform adds timeslice +
        // jitter-free colocation=1.0; degree 6 = cores so no timeslice).
        let platform_a = mixed_exec_secs(&inst, &mix, 0);
        let predicted_a = exec_in_mix(&ma, &mb, 4, 2, 0);
        assert!(
            (platform_a - predicted_a).abs() / platform_a < 0.01,
            "{platform_a} vs {predicted_a}"
        );
    }
}
