//! A shareable, memoized store of fitted ProPack models.
//!
//! Building a [`Propack`] is the expensive step of the pipeline: it runs an
//! interference campaign plus scaling probes on the platform. Across a
//! sweep grid (or a workflow with repeated stages) the same
//! `(platform, workload, config)` triple recurs many times, and the paper's
//! method fits **one** model per application per platform (§2.1–2.2) — so
//! the fit is cached and shared.
//!
//! The cache is `Sync`: the sweep engine's worker threads consult one
//! instance concurrently. Internally it is a `Mutex<BTreeMap>` of per-key
//! slots — ordered, deterministic iteration; the map lock is held only to
//! fetch a slot, and same-key callers coalesce on the slot's own lock, so
//! each distinct key is fitted exactly once and hits are a cheap clone of
//! an [`Arc`].
//!
//! Determinism note: whether a model comes from a cold fit or a cache hit
//! is *invisible* in results. `Propack::build` is deterministic in
//! `(platform, workload, config)`, so the cached model is bit-identical to
//! what a cold fit would produce, and the recorded probe overhead is part
//! of the model itself ([`Propack::overhead`]), not of cache bookkeeping.

use crate::profiler::{probe_scaling, Overhead};
use crate::propack::{ProPackConfig, Propack};
use crate::scaling::ScalingModel;
use crate::ModelError;
use propack_platform::{ServerlessPlatform, WorkProfile};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one fitted model: which platform, which application, which
/// profiling tunables.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ModelKey {
    /// Platform display name (presets are keyed by provider name).
    pub platform: String,
    /// Workload name from the [`WorkProfile`].
    pub workload: String,
    /// Profiling configuration (probe sizes, levels, seed).
    pub config: ProPackConfig,
}

impl ModelKey {
    /// Key for fitting `work` on `platform` under `config`.
    pub fn new<P: ServerlessPlatform + ?Sized>(
        platform: &P,
        work: &WorkProfile,
        config: &ProPackConfig,
    ) -> Self {
        ModelKey {
            platform: platform.name(),
            workload: work.name.clone(),
            config: config.clone(),
        }
    }
}

/// One cache entry: `None` until a fit completes. The per-key mutex is the
/// coalescing point — concurrent same-key callers queue on it, so a cold
/// fit runs exactly once per key even under a thread race (fitting is the
/// expensive step; duplicating it would waste hundreds of milliseconds per
/// racer without changing any result).
type Slot = Mutex<Option<Arc<Propack>>>;

/// Identity of one scaling-probe campaign. The scaling model is
/// application-*independent* (§2.2: it "needs to be developed only once"
/// per platform), so its key deliberately omits the workload — every
/// application fitted on the same platform with the same probe ladder and
/// seed shares one campaign.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ScalingKey {
    platform: String,
    levels: Vec<u32>,
    seed: u64,
}

/// A completed scaling campaign: the fitted polynomial plus the probe cost
/// that every model reusing it must still account for.
type ScalingSlot = Mutex<Option<Arc<(ScalingModel, Overhead)>>>;

/// A thread-safe memo of fitted [`Propack`] models, one per distinct
/// [`ModelKey`], plus a second memo of scaling-probe campaigns keyed by
/// `(platform, levels, seed)` so the probe ladder runs once per platform,
/// not once per workload.
#[derive(Debug, Default)]
pub struct ModelCache {
    slots: Mutex<BTreeMap<ModelKey, Arc<Slot>>>,
    scaling: Mutex<BTreeMap<ScalingKey, Arc<ScalingSlot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ModelCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the fitted model for `(platform, work, config)`, building and
    /// inserting it on first use.
    ///
    /// The platform probes run while holding only this key's slot lock, so
    /// concurrent callers with *different* keys never serialize on each
    /// other's fits, and concurrent callers on the *same* cold key coalesce:
    /// the first fits, the rest wait and take a hit. If a fit fails the slot
    /// stays empty and the next caller retries.
    pub fn fit<P: ServerlessPlatform + ?Sized>(
        &self,
        platform: &P,
        work: &WorkProfile,
        config: &ProPackConfig,
    ) -> Result<Arc<Propack>, ModelError> {
        let key = ModelKey::new(platform, work, config);
        let slot = {
            let mut slots = self.lock_slots();
            Arc::clone(slots.entry(key).or_default())
        };
        let mut entry = lock_recovering(&slot);
        if let Some(found) = entry.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(found));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // The application-independent half of the fit comes from the
        // scaling memo (one probe campaign per platform); only the
        // interference campaign runs per workload. `build_with_scaling`
        // with the campaign's exact outputs reproduces `Propack::build`
        // bit-for-bit: both campaigns are deterministic and independent
        // (each probe burst is its own seeded simulation), and the
        // overhead is absorbed in the same interference-then-scaling order.
        let (scaling, scaling_overhead) = self.scaling_campaign(platform, config)?;
        let built = Arc::new(Propack::build_with_scaling(
            platform,
            work,
            config,
            scaling,
            scaling_overhead,
        )?);
        *entry = Some(Arc::clone(&built));
        Ok(built)
    }

    /// The memoized scaling campaign for `platform` under `config`'s probe
    /// ladder and seed, running it on first use. Same coalescing discipline
    /// as the model slots: distinct platforms never serialize on each
    /// other, same-platform racers run the ladder once.
    fn scaling_campaign<P: ServerlessPlatform + ?Sized>(
        &self,
        platform: &P,
        config: &ProPackConfig,
    ) -> Result<(ScalingModel, Overhead), ModelError> {
        let key = ScalingKey {
            platform: platform.name(),
            levels: config.scaling_levels.clone(),
            seed: config.seed,
        };
        let slot = {
            let mut scaling = self
                .scaling
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            Arc::clone(scaling.entry(key).or_default())
        };
        let mut entry = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(found) = entry.as_ref() {
            return Ok((found.0, found.1));
        }
        let probe = probe_scaling(platform, &config.scaling_levels, config.seed)?;
        let model = ScalingModel::fit(&probe.samples)?;
        *entry = Some(Arc::new((model, probe.overhead)));
        Ok((model, probe.overhead))
    }

    /// Number of distinct scaling-probe campaigns run so far.
    pub fn scaling_campaigns(&self) -> usize {
        let slots: Vec<Arc<ScalingSlot>> = self
            .scaling
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .values()
            .map(Arc::clone)
            .collect();
        slots
            .iter()
            .filter(|s| {
                s.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .is_some()
            })
            .count()
    }

    /// The model for `key` if it has already been fitted.
    pub fn get(&self, key: &ModelKey) -> Option<Arc<Propack>> {
        let slot = self.lock_slots().get(key).map(Arc::clone)?;
        let entry = lock_recovering(&slot);
        entry.as_ref().map(Arc::clone)
    }

    /// Number of distinct models currently cached (completed fits only).
    pub fn len(&self) -> usize {
        let slots: Vec<Arc<Slot>> = self.lock_slots().values().map(Arc::clone).collect();
        slots
            .iter()
            .filter(|s| lock_recovering(s).is_some())
            .count()
    }

    /// Whether the cache holds no fitted models.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that required a fresh fit so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn lock_slots(&self) -> std::sync::MutexGuard<'_, BTreeMap<ModelKey, Arc<Slot>>> {
        // A poisoned lock means another worker panicked mid-insert; the map
        // itself is still a valid memo (worst case: missing an entry that
        // will simply be re-fitted), so recover rather than propagate.
        self.slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Lock a slot, recovering from poison: a panic mid-fit leaves the slot
/// `None`, which simply means the next caller re-fits.
fn lock_recovering(slot: &Slot) -> std::sync::MutexGuard<'_, Option<Arc<Propack>>> {
    slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Objective;
    use propack_platform::PlatformBuilder;

    fn work() -> WorkProfile {
        WorkProfile::synthetic("cache-w", 0.25, 60.0).with_contention(0.25)
    }

    #[test]
    fn second_fit_is_a_hit_and_identical() {
        let cache = ModelCache::new();
        let platform = PlatformBuilder::aws().build();
        let cfg = ProPackConfig::default();
        let cold = cache.fit(&platform, &work(), &cfg).unwrap();
        let warm = cache.fit(&platform, &work(), &cfg).unwrap();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert!(Arc::ptr_eq(&cold, &warm));
        // Cache hit vs. cold fit: identical packing decisions.
        let fresh = Propack::build(&platform, &work(), &cfg).unwrap();
        for c in [100, 1000, 5000] {
            assert_eq!(
                warm.plan(c, Objective::default()).unwrap(),
                fresh.plan(c, Objective::default()).unwrap()
            );
        }
    }

    #[test]
    fn distinct_keys_get_distinct_models() {
        let cache = ModelCache::new();
        let aws = PlatformBuilder::aws().build();
        let google = PlatformBuilder::google().build();
        let cfg = ProPackConfig::default();
        cache.fit(&aws, &work(), &cfg).unwrap();
        cache.fit(&google, &work(), &cfg).unwrap();
        let other = WorkProfile::synthetic("other", 0.5, 30.0).with_contention(0.1);
        cache.fit(&aws, &other, &cfg).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn scaling_campaign_shared_across_workloads() {
        let cache = ModelCache::new();
        let platform = PlatformBuilder::aws().build();
        let cfg = ProPackConfig::default();
        cache.fit(&platform, &work(), &cfg).unwrap();
        let other = WorkProfile::synthetic("other-w", 0.5, 30.0).with_contention(0.1);
        cache.fit(&platform, &other, &cfg).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.scaling_campaigns(),
            1,
            "the probe ladder is application-independent: one campaign per platform"
        );
        // A memoized-scaling fit must be indistinguishable from a cold
        // standalone build.
        let fresh = Propack::build(&platform, &work(), &cfg).unwrap();
        assert_eq!(*cache.fit(&platform, &work(), &cfg).unwrap(), fresh);
    }

    #[test]
    fn config_is_part_of_the_key() {
        let cache = ModelCache::new();
        let platform = PlatformBuilder::aws().build();
        let a = ProPackConfig::default();
        let b = ProPackConfig {
            seed: a.seed + 1,
            ..a.clone()
        };
        cache.fit(&platform, &work(), &a).unwrap();
        cache.fit(&platform, &work(), &b).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let cache = Arc::new(ModelCache::new());
        let cfg = ProPackConfig::default();
        // simlint: allow(thread-spawn): "test exercises the cache's cross-thread sharing contract; no simulated outcome depends on scheduling"
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let cfg = cfg.clone();
                scope.spawn(move || {
                    let platform = PlatformBuilder::aws().build();
                    cache.fit(&platform, &work(), &cfg).unwrap();
                });
            }
        });
        // All four threads converged on one model, and the cold fit ran
        // exactly once — same-key racers coalesce on the slot lock.
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 3);
    }
}
