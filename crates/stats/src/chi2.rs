//! Pearson χ² goodness-of-fit test, as used in §2.4 of the paper.
//!
//! The paper computes *"the sum of the squared difference between the
//! observed value and expected value (according to the analytical model) as
//! a fraction of the expected value across different packing degrees"*, and
//! compares it against the χ² distribution with `15 − 1 = 14` degrees of
//! freedom at a confidence of 99.5 % — for which the critical value is
//! 4.075. Observed statistics below the critical value accept the null
//! hypothesis that model and observation come from the same distribution.
//!
//! Note the paper uses the *lower* tail quantile (`P(χ² ≤ x) = 1 − p` for
//! p = 0.995): χ²₀.₀₀₅(14) ≈ 4.075. We reproduce exactly that convention in
//! [`chi2_critical_value`].

use crate::special::gamma_p;
use crate::{check_xy, Result, StatsError};
use serde::{Deserialize, Serialize};

/// χ² distribution CDF: `P(X ≤ x)` for `dof` degrees of freedom.
pub fn chi2_cdf(x: f64, dof: f64) -> Result<f64> {
    if dof <= 0.0 {
        return Err(StatsError::Domain("chi2_cdf requires dof > 0"));
    }
    if x <= 0.0 {
        return Ok(0.0);
    }
    gamma_p(dof / 2.0, x / 2.0)
}

/// Inverse χ² CDF (quantile function) by bisection on the monotone CDF.
///
/// `q` is the lower-tail probability: returns `x` with `P(X ≤ x) = q`.
pub fn chi2_quantile(q: f64, dof: f64) -> Result<f64> {
    if !(0.0..1.0).contains(&q) {
        return Err(StatsError::Domain("quantile probability must be in [0, 1)"));
    }
    if dof <= 0.0 {
        return Err(StatsError::Domain("chi2_quantile requires dof > 0"));
    }
    // simlint: allow(float-eq): "quantile at exactly q = 0 is 0; any positive q is bracketed below"
    if q == 0.0 {
        return Ok(0.0);
    }
    // Bracket: the mean of χ²(k) is k and the variance 2k; expand upward
    // until the CDF exceeds q.
    let mut hi = dof + 10.0 * (2.0 * dof).sqrt() + 10.0;
    while chi2_cdf(hi, dof)? < q {
        hi *= 2.0;
        if hi > 1e12 {
            return Err(StatsError::Domain("chi2_quantile bracket overflow"));
        }
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if chi2_cdf(mid, dof)? < q {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 * hi.max(1.0) {
            break;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Critical value at the paper's convention: confidence `conf` (e.g. 0.995)
/// maps to the lower-tail quantile at `1 − conf`.
///
/// `chi2_critical_value(0.995, 14)` ≈ 4.075, the number quoted in §2.4.
pub fn chi2_critical_value(conf: f64, dof: usize) -> Result<f64> {
    if !(0.5..1.0).contains(&conf) {
        return Err(StatsError::Domain("confidence must be in [0.5, 1)"));
    }
    chi2_quantile(1.0 - conf, dof as f64)
}

/// Pearson χ² statistic: `Σ (observed − expected)² / expected`.
///
/// Expected values must be strictly positive.
pub fn chi2_statistic(observed: &[f64], expected: &[f64]) -> Result<f64> {
    check_xy(observed, expected)?;
    if observed.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    let mut stat = 0.0;
    for (i, (&o, &e)) in observed.iter().zip(expected).enumerate() {
        if e <= 0.0 {
            return Err(StatsError::NonPositiveObservation { index: i, value: e });
        }
        let d = o - e;
        stat += d * d / e;
    }
    Ok(stat)
}

/// Outcome of a goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GofOutcome {
    /// The Pearson χ² statistic.
    pub statistic: f64,
    /// The critical value the statistic was compared against.
    pub critical_value: f64,
    /// Degrees of freedom used.
    pub dof: usize,
    /// Whether the null hypothesis (model fits) is accepted.
    pub accepted: bool,
}

/// A configured Pearson χ² goodness-of-fit test.
///
/// # Example — the paper's own setup (§2.4)
/// ```
/// use propack_stats::ChiSquareTest;
/// let test = ChiSquareTest::paper_default();
/// assert_eq!(test.dof, 14);
/// // The paper's reported worst-case service-time statistic (3.81) passes,
/// // and so does the expense statistic (0.055):
/// assert!(test.accepts(3.81).unwrap());
/// assert!(test.accepts(0.055).unwrap());
/// assert!(!test.accepts(4.2).unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareTest {
    /// Degrees of freedom (paper: 15 − 1 = 14, from the Sort application's
    /// maximum packing degree, the lowest across all applications).
    pub dof: usize,
    /// Confidence level (paper: 0.995).
    pub confidence: f64,
}

impl ChiSquareTest {
    /// The configuration from §2.4 of the paper: dof = 14, confidence 99.5 %.
    pub fn paper_default() -> Self {
        ChiSquareTest {
            dof: 14,
            confidence: 0.995,
        }
    }

    /// Construct a test with explicit parameters.
    pub fn new(dof: usize, confidence: f64) -> Self {
        ChiSquareTest { dof, confidence }
    }

    /// The critical value for this configuration.
    pub fn critical_value(&self) -> Result<f64> {
        chi2_critical_value(self.confidence, self.dof)
    }

    /// Does a precomputed statistic pass?
    pub fn accepts(&self, statistic: f64) -> Result<bool> {
        Ok(statistic <= self.critical_value()?)
    }

    /// Run the full test on observed vs. model-expected values.
    pub fn run(&self, observed: &[f64], expected: &[f64]) -> Result<GofOutcome> {
        let statistic = chi2_statistic(observed, expected)?;
        let critical_value = self.critical_value()?;
        Ok(GofOutcome {
            statistic,
            critical_value,
            dof: self.dof,
            accepted: statistic <= critical_value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_critical_value_is_4_075() {
        // χ²₀.₀₀₅(14) = 4.07468... — the exact number §2.4 quotes as 4.075.
        let cv = chi2_critical_value(0.995, 14).unwrap();
        assert!((cv - 4.075).abs() < 0.005, "cv = {cv}");
    }

    #[test]
    fn common_table_values() {
        // Upper-tail 95 % values from standard χ² tables: P(X ≤ x) = 0.95.
        let cases = [(1.0, 3.841), (5.0, 11.070), (10.0, 18.307), (14.0, 23.685)];
        for (dof, want) in cases {
            let got = chi2_quantile(0.95, dof).unwrap();
            assert!((got - want).abs() < 0.01, "dof {dof}: {got} vs {want}");
        }
    }

    #[test]
    fn cdf_quantile_roundtrip() {
        for &dof in &[1.0, 4.0, 14.0, 50.0] {
            for &q in &[0.005, 0.25, 0.5, 0.9, 0.995] {
                let x = chi2_quantile(q, dof).unwrap();
                let back = chi2_cdf(x, dof).unwrap();
                assert!((back - q).abs() < 1e-7, "dof {dof} q {q}: {back}");
            }
        }
    }

    #[test]
    fn statistic_zero_for_perfect_fit() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(chi2_statistic(&v, &v).unwrap(), 0.0);
    }

    #[test]
    fn statistic_hand_computed() {
        // (10-8)²/8 + (6-8)²/8 = 0.5 + 0.5 = 1.0
        let s = chi2_statistic(&[10.0, 6.0], &[8.0, 8.0]).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn statistic_rejects_non_positive_expected() {
        assert!(matches!(
            chi2_statistic(&[1.0], &[0.0]),
            Err(StatsError::NonPositiveObservation { .. })
        ));
    }

    #[test]
    fn paper_reported_statistics_accept() {
        let t = ChiSquareTest::paper_default();
        let out = t
            .run(&[100.0, 110.0, 125.0, 142.0], &[101.0, 109.5, 126.0, 141.0])
            .unwrap();
        assert!(out.accepted);
        assert!(out.statistic < out.critical_value);
    }

    #[test]
    fn badly_wrong_model_rejects() {
        let t = ChiSquareTest::paper_default();
        let out = t.run(&[100.0, 200.0, 400.0], &[10.0, 10.0, 10.0]).unwrap();
        assert!(!out.accepted);
    }

    #[test]
    fn quantile_monotone_in_q() {
        let mut prev = 0.0;
        for i in 1..20 {
            let q = i as f64 / 20.0;
            let x = chi2_quantile(q, 14.0).unwrap();
            assert!(x > prev);
            prev = x;
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(chi2_quantile(1.5, 14.0).is_err());
        assert!(chi2_quantile(0.5, 0.0).is_err());
        assert!(chi2_critical_value(0.4, 14).is_err());
        assert!(chi2_cdf(1.0, -1.0).is_err());
    }
}
