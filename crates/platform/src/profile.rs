//! Platform calibration profiles.
//!
//! A [`PlatformProfile`] bundles every constant the simulator needs: the
//! control-plane cost curves (scheduling, container build, shipping), the
//! instance shape (cores, memory, execution cap), and the price sheet. The
//! presets are calibrated so the *shapes and magnitudes* of the paper's
//! figures reproduce — see the per-field doc comments for which figure
//! anchors each constant. Absolute cloud-vendor numbers from 2022 testbeds
//! are not a reproduction target (see `DESIGN.md` §7).

use propack_simcore::FaultSpec;
use serde::{Deserialize, Serialize};

// Named calibration anchors shared by more than one preset. Every `pub
// const` in this module must carry a doc comment citing the paper artifact
// it was read from — enforced by `cargo xtask simlint` (rule `const-doc`).

/// Instance memory cap on AWS Lambda in GB — `M_platform` of Table 1; also
/// the FuncX cluster's per-pod budget (Fig. 18 runs the same shape on-prem).
pub const AWS_MEM_GB: f64 = 10.0;

/// vCPU cores per 10 GB Lambda instance (§2.6); packing beyond this count
/// pays the time-slicing penalty that bends the Fig. 6 service curve.
pub const AWS_CORES: u32 = 6;

/// AWS Lambda execution cap in seconds (§2.6, §3) — the `ExecutionTimeout`
/// admission bound.
pub const AWS_MAX_EXEC_SECS: f64 = 900.0;

/// Published Lambda compute price (USD per GB·second) that makes the Fig. 12
/// absolute dollar values line up.
pub const AWS_USD_PER_GB_SEC: f64 = 1.666_67e-5;

/// Fleet size backing every preset's placement search: §1's "scheduling
/// algorithm searches among the running servers of the datacenter", sized so
/// C = 5000 bursts (Fig. 1) fit without saturating admission.
pub const FLEET_SERVERS: u32 = 2_000;

/// MicroVM slots per fleet server; with [`FLEET_SERVERS`] this bounds
/// admitted concurrency for the Fig. 1 scaling sweeps.
pub const FLEET_SLOTS: u32 = 16;

// Default runtime-fault rates. The ProPack paper's model assumes every
// spawned instance starts and finishes (§3 runs are fault-free), so none of
// these come from its figures; they anchor to the robustness discussion in
// related work instead and exist so `--faults default` scenarios have
// plausible per-provider magnitudes.

/// Per-attempt probability a commercial-cloud instance crashes mid-run.
/// Not a ProPack artifact (§3 assumes fault-free bursts); order of
/// magnitude follows the blast-radius discussion of intra-function
/// parallelism in Kiener et al., §4.
pub const CLOUD_CRASH_RATE: f64 = 0.001;

/// Per-attempt probability a commercial-cloud cold boot (microVM +
/// runtime init) fails and must be redone — cold-start variability is the
/// failure mode Pagurus (Li et al., §2) targets; not from the ProPack
/// paper (§3 is fault-free).
pub const CLOUD_PROVISION_FAILURE_RATE: f64 = 0.005;

/// Probability one container-shipping transfer stalls on the shared
/// fabric (cf. the shipping stage of the paper's §1 pipeline, which models
/// only the fault-free bandwidth).
pub const CLOUD_SHIP_STALL_RATE: f64 = 0.002;

/// Effective slowdown of a stalled shipping transfer (×; cf. §1 shipping
/// stage — a stalled transfer holds the shared fabric that much longer).
pub const CLOUD_SHIP_STALL_FACTOR: f64 = 4.0;

/// Probability a commercial-cloud instance is a straggler for its whole
/// lifetime (noisy neighbour / slow host; Fig. 5a's flat execution time is
/// the fault-free complement of this tail).
pub const CLOUD_STRAGGLER_RATE: f64 = 0.01;

/// Execution slowdown of a cloud straggler instance (×; the tail that
/// Fig. 5a's < 5 % jitter bound excludes).
pub const CLOUD_STRAGGLER_FACTOR: f64 = 2.5;

/// Per-attempt crash rate on the FuncX on-prem cluster — pods co-locate
/// workers with weaker isolation than Firecracker (Fig. 18 discussion), so
/// crashes are modestly more common than on the clouds.
pub const FUNCX_CRASH_RATE: f64 = 0.002;

/// Straggler probability on the FuncX cluster (Fig. 18's shared-cluster
/// setting: co-located pods contend more than reserved microVMs).
pub const FUNCX_STRAGGLER_RATE: f64 = 0.02;

/// Execution slowdown of a FuncX straggler pod (×; same co-location
/// mechanism as the Fig. 18 packed-execution penalty).
pub const FUNCX_STRAGGLER_FACTOR: f64 = 3.0;

/// Which cloud (or on-prem) provider a profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provider {
    /// AWS Lambda (Firecracker microVMs, Step Functions invoker).
    AwsLambda,
    /// Google Cloud Functions.
    GoogleCloudFunctions,
    /// Microsoft Azure Functions.
    AzureFunctions,
    /// FuncX-style on-premise deployment (Kubernetes pods on a cluster).
    FuncX,
}

impl Provider {
    /// Display name used in figure output.
    pub fn name(self) -> &'static str {
        match self {
            Provider::AwsLambda => "AWS Lambda",
            Provider::GoogleCloudFunctions => "Google Cloud Functions",
            Provider::AzureFunctions => "Azure Functions",
            Provider::FuncX => "FuncX",
        }
    }

    /// The three commercial clouds evaluated in Fig. 1 / Fig. 21.
    pub const CLOUDS: [Provider; 3] = [
        Provider::AwsLambda,
        Provider::GoogleCloudFunctions,
        Provider::AzureFunctions,
    ];
}

/// Control-plane cost curve constants.
///
/// The scheduling service time for the `k`-th placement of a burst is
/// `sched_base_secs + sched_per_inflight_secs · k`: the scheduler re-scans
/// its occupancy bookkeeping, which has grown by one entry per admitted
/// placement. Summed over a burst of `N`, the last placement completes at
/// `sched_base·N + sched_per_inflight·N²/2` — the quadratic β₁ term of the
/// paper's Eq. 2 emerges with `β₁ ≈ sched_per_inflight / 2`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlPlaneProfile {
    /// Fixed scheduler service per placement (seconds).
    pub sched_base_secs: f64,
    /// Incremental scheduler service per already-admitted placement
    /// (seconds). Calibrated so scaling time at C = 5000 is dominated by
    /// scheduling, matching Fig. 2's breakdown.
    pub sched_per_inflight_secs: f64,
    /// Container/microVM image size (bytes) — runtime + dependencies.
    pub image_bytes: f64,
    /// Image-build server bandwidth (bytes/s): downloading + installing the
    /// runtime environment, bounded by network and compute of the server
    /// that forms containers (§1 of the paper).
    pub build_bytes_per_sec: f64,
    /// Fabric bandwidth (bytes/s) for shipping formed containers to their
    /// scheduled servers.
    pub ship_bytes_per_sec: f64,
    /// Cold-start constant for provisioning the very first instance
    /// (seconds): microVM boot + runtime init.
    pub cold_start_secs: f64,
    /// Relative jitter amplitude on control-plane service times.
    pub jitter: f64,
    /// Datacenter fleet: number of servers available to this burst's
    /// placement search (§1: "a scheduling algorithm searches among the
    /// running servers of the datacenter").
    pub fleet_servers: u32,
    /// MicroVM slots per fleet server; `fleet_servers × fleet_slots` bounds
    /// concurrent instances (admission).
    pub fleet_slots: u32,
}

/// Instance (microVM / container) shape and contention constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceProfile {
    /// vCPU cores per function instance (AWS Lambda at 10 GB: 6 vCPUs).
    pub cores: u32,
    /// Maximum memory per instance in GB (AWS Lambda: 10 GB) — this is
    /// `M_platform` in the paper's Table 1 and bounds the packing degree.
    pub mem_gb: f64,
    /// Maximum execution time per instance (AWS Lambda: 900 s).
    pub max_exec_secs: f64,
    /// Extra per-function slowdown once the packing degree exceeds the core
    /// count (time-slicing overhead per excess function, relative).
    pub timeslice_penalty: f64,
    /// Relative jitter amplitude on execution times. Fig. 5a reports < 5 %
    /// execution-time variation across concurrency levels; 0.02 keeps the
    /// coefficient of variation comfortably inside that bound.
    pub exec_jitter: f64,
    /// Multiplier ≥ 1 applied to packed execution (packing degree > 1) to
    /// model isolation quality. Firecracker microVMs isolate well (1.0);
    /// FuncX pods co-locate workers with weaker isolation (Fig. 18: packed
    /// execution ~12 % slower than on Lambda).
    pub colocation_penalty: f64,
}

/// Price sheet, in USD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceSheet {
    /// Compute price per GB·second of *executing* instance time. Scaling /
    /// queueing delay is never billed (§2.3 of the paper).
    pub usd_per_gb_sec: f64,
    /// Per-invocation request fee.
    pub usd_per_request: f64,
    /// Object-storage request fee (per request, averaged PUT/GET).
    pub usd_per_storage_request: f64,
    /// Object-storage capacity fee per GB (amortized per run).
    pub usd_per_storage_gb: f64,
    /// Network egress fee per GB transferred between function instances.
    /// AWS does not charge this for Lambda; Google and Azure do (Fig. 21).
    pub usd_per_network_gb: f64,
}

/// A complete platform calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformProfile {
    /// Which provider this profile models.
    pub provider: Provider,
    /// Control-plane cost curves.
    pub control: ControlPlaneProfile,
    /// Instance shape and contention constants.
    pub instance: InstanceProfile,
    /// Billing rates.
    pub prices: PriceSheet,
}

impl PlatformProfile {
    /// AWS Lambda — the paper's primary testbed (§3).
    ///
    /// Calibration anchors:
    /// * scaling time ≈ 900 s at C = 5000 and the scheduling component
    ///   dominating (Figs. 1–2);
    /// * 10 GB / 6-core instances, 900 s execution cap (§2.6, §3);
    /// * $0.0000166667 per GB·s and $0.20 per 1M requests (published Lambda
    ///   prices, which make the Fig. 12 absolute dollar values line up);
    /// * no network fee (Fig. 21 discussion).
    pub fn aws_lambda() -> Self {
        PlatformProfile {
            provider: Provider::AwsLambda,
            control: ControlPlaneProfile {
                sched_base_secs: 0.2,
                sched_per_inflight_secs: 4.5e-5,
                image_bytes: 45e6,
                build_bytes_per_sec: 2.2e9,
                ship_bytes_per_sec: 3.0e9,
                cold_start_secs: 2.5,
                fleet_servers: FLEET_SERVERS,
                fleet_slots: FLEET_SLOTS,
                jitter: 0.05,
            },
            instance: InstanceProfile {
                cores: AWS_CORES,
                mem_gb: AWS_MEM_GB,
                max_exec_secs: AWS_MAX_EXEC_SECS,
                timeslice_penalty: 0.004,
                exec_jitter: 0.02,
                colocation_penalty: 1.0,
            },
            prices: PriceSheet {
                usd_per_gb_sec: AWS_USD_PER_GB_SEC,
                usd_per_request: 2.0e-7,
                usd_per_storage_request: 5.0e-6,
                usd_per_storage_gb: 0.023 / 30.0, // S3 monthly rate amortized per day-scale run
                usd_per_network_gb: 0.0,
            },
        }
    }

    /// Google Cloud Functions.
    ///
    /// Scales somewhat worse than Lambda at high concurrency (Fig. 1 shows a
    /// larger scaling fraction) and charges a per-GB network fee, which is
    /// why ProPack's *expense* win is larger on Google than AWS (Fig. 21).
    pub fn google_cloud_functions() -> Self {
        PlatformProfile {
            provider: Provider::GoogleCloudFunctions,
            control: ControlPlaneProfile {
                sched_base_secs: 0.25,
                sched_per_inflight_secs: 5.6e-5,
                image_bytes: 55e6,
                build_bytes_per_sec: 2.0e9,
                ship_bytes_per_sec: 2.4e9,
                cold_start_secs: 3.2,
                fleet_servers: FLEET_SERVERS,
                fleet_slots: FLEET_SLOTS,
                jitter: 0.06,
            },
            instance: InstanceProfile {
                cores: 4,
                mem_gb: 8.0,
                max_exec_secs: 540.0,
                timeslice_penalty: 0.005,
                exec_jitter: 0.025,
                colocation_penalty: 1.0,
            },
            prices: PriceSheet {
                usd_per_gb_sec: 2.5e-6 + 1.4e-5, // memory + CPU component folded per GB·s
                usd_per_request: 4.0e-7,
                usd_per_storage_request: 5.0e-6,
                usd_per_storage_gb: 0.020 / 30.0,
                usd_per_network_gb: 0.12,
            },
        }
    }

    /// Microsoft Azure Functions (Premium plan shape).
    pub fn azure_functions() -> Self {
        PlatformProfile {
            provider: Provider::AzureFunctions,
            control: ControlPlaneProfile {
                sched_base_secs: 0.28,
                sched_per_inflight_secs: 6.4e-5,
                image_bytes: 60e6,
                build_bytes_per_sec: 1.8e9,
                ship_bytes_per_sec: 2.2e9,
                cold_start_secs: 3.8,
                fleet_servers: FLEET_SERVERS,
                fleet_slots: FLEET_SLOTS,
                jitter: 0.07,
            },
            instance: InstanceProfile {
                cores: 4,
                mem_gb: 14.0,
                max_exec_secs: 600.0,
                timeslice_penalty: 0.005,
                exec_jitter: 0.03,
                colocation_penalty: 1.0,
            },
            prices: PriceSheet {
                usd_per_gb_sec: 1.6e-5,
                usd_per_request: 2.0e-7,
                usd_per_storage_request: 5.4e-6,
                usd_per_storage_gb: 0.018 / 30.0,
                usd_per_network_gb: 0.087,
            },
        }
    }

    /// FuncX-style on-prem deployment (used by `propack-funcx`; kept here so
    /// all calibrations live side by side).
    ///
    /// Anchors from Fig. 18: FuncX spawns workers in Kubernetes pods with
    /// container caching, so it scales ~15 % faster than Lambda at C = 5000;
    /// but pods co-locate workers with weaker isolation than Firecracker, so
    /// *packed* execution runs ~12 % slower than on Lambda.
    pub fn funcx_cluster() -> Self {
        PlatformProfile {
            provider: Provider::FuncX,
            control: ControlPlaneProfile {
                sched_base_secs: 0.17,
                sched_per_inflight_secs: 3.9e-5,
                image_bytes: 45e6,
                // Kubernetes container caching: most pod spawns skip the
                // image download, modeled as a much faster effective build.
                build_bytes_per_sec: 9.0e9,
                ship_bytes_per_sec: 6.0e9,
                cold_start_secs: 1.2,
                fleet_servers: FLEET_SERVERS,
                fleet_slots: FLEET_SLOTS,
                jitter: 0.05,
            },
            instance: InstanceProfile {
                cores: AWS_CORES,
                mem_gb: AWS_MEM_GB,
                max_exec_secs: f64::INFINITY, // on-prem: no execution cap
                timeslice_penalty: 0.004,
                exec_jitter: 0.03,
                colocation_penalty: 1.35,
            },
            prices: PriceSheet {
                // On-prem accounting: amortized node-hour cost expressed per
                // GB·s so expense comparisons remain meaningful.
                usd_per_gb_sec: 1.1e-5,
                usd_per_request: 0.0,
                usd_per_storage_request: 0.0,
                usd_per_storage_gb: 0.0,
                usd_per_network_gb: 0.0,
            },
        }
    }

    /// The provider's default runtime-fault rates (all-zero fault specs
    /// stay the default for every burst; these are what `--faults default`
    /// opts into). Commercial clouds see crash, provision-failure, shipping
    /// and straggler faults; the on-prem FuncX cluster has no microVM boot
    /// or image-shipping fabric in the faultable sense, so only crash and
    /// straggler lanes apply there.
    pub fn default_faults(&self) -> FaultSpec {
        match self.provider {
            Provider::AwsLambda | Provider::GoogleCloudFunctions | Provider::AzureFunctions => {
                FaultSpec::none()
                    .with_crash_rate(CLOUD_CRASH_RATE)
                    .with_provision_failure_rate(CLOUD_PROVISION_FAILURE_RATE)
                    .with_ship_stall(CLOUD_SHIP_STALL_RATE, CLOUD_SHIP_STALL_FACTOR)
                    .with_straggler(CLOUD_STRAGGLER_RATE, CLOUD_STRAGGLER_FACTOR)
            }
            Provider::FuncX => FaultSpec::none()
                .with_crash_rate(FUNCX_CRASH_RATE)
                .with_straggler(FUNCX_STRAGGLER_RATE, FUNCX_STRAGGLER_FACTOR),
        }
    }

    /// Preset lookup by provider.
    pub fn preset(provider: Provider) -> Self {
        match provider {
            Provider::AwsLambda => Self::aws_lambda(),
            Provider::GoogleCloudFunctions => Self::google_cloud_functions(),
            Provider::AzureFunctions => Self::azure_functions(),
            Provider::FuncX => Self::funcx_cluster(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_self_consistent() {
        for p in [
            PlatformProfile::aws_lambda(),
            PlatformProfile::google_cloud_functions(),
            PlatformProfile::azure_functions(),
            PlatformProfile::funcx_cluster(),
        ] {
            assert!(p.control.sched_base_secs > 0.0);
            assert!(p.control.sched_per_inflight_secs > 0.0);
            assert!(p.control.build_bytes_per_sec > 0.0);
            assert!(p.control.ship_bytes_per_sec > 0.0);
            assert!(p.instance.cores >= 1);
            assert!(p.instance.mem_gb > 0.0);
            assert!(p.instance.colocation_penalty >= 1.0);
            assert!(p.prices.usd_per_gb_sec >= 0.0);
        }
    }

    #[test]
    fn aws_has_no_network_fee_google_azure_do() {
        // The mechanism behind Fig. 21's expense asymmetry.
        assert_eq!(PlatformProfile::aws_lambda().prices.usd_per_network_gb, 0.0);
        assert!(
            PlatformProfile::google_cloud_functions()
                .prices
                .usd_per_network_gb
                > 0.0
        );
        assert!(PlatformProfile::azure_functions().prices.usd_per_network_gb > 0.0);
    }

    #[test]
    fn funcx_control_plane_faster_but_isolation_weaker() {
        let aws = PlatformProfile::aws_lambda();
        let fx = PlatformProfile::funcx_cluster();
        assert!(fx.control.sched_per_inflight_secs < aws.control.sched_per_inflight_secs);
        assert!(fx.control.cold_start_secs < aws.control.cold_start_secs);
        assert!(fx.instance.colocation_penalty > aws.instance.colocation_penalty);
    }

    #[test]
    fn default_fault_rates_are_valid_and_provider_shaped() {
        for prov in [
            Provider::AwsLambda,
            Provider::GoogleCloudFunctions,
            Provider::AzureFunctions,
            Provider::FuncX,
        ] {
            let spec = PlatformProfile::preset(prov).default_faults();
            assert!(spec.invalid_field().is_none(), "{prov:?}");
            assert!(!spec.is_none(), "{prov:?} defaults should inject faults");
        }
        // On-prem has no microVM boot or shipping fabric to fault.
        let funcx = PlatformProfile::funcx_cluster().default_faults();
        assert_eq!(funcx.provision_failure_rate, 0.0);
        assert_eq!(funcx.ship_stall_rate, 0.0);
        assert!(funcx.crash_rate > 0.0);
    }

    #[test]
    fn preset_lookup_matches_provider() {
        for prov in [
            Provider::AwsLambda,
            Provider::GoogleCloudFunctions,
            Provider::AzureFunctions,
            Provider::FuncX,
        ] {
            assert_eq!(PlatformProfile::preset(prov).provider, prov);
            assert!(!prov.name().is_empty());
        }
    }

    #[test]
    #[cfg_attr(
        feature = "offline-stub",
        ignore = "requires real serde_json (offline stub cannot serialize)"
    )]
    fn profiles_serialize_roundtrip() {
        let p = PlatformProfile::aws_lambda();
        let json = serde_json::to_string(&p).unwrap();
        let back: PlatformProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
