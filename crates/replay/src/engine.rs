//! The replay engine: an online packing controller on sim time.
//!
//! The engine chops a trace's horizon into fixed-width epochs
//! ([`EpochTimeline`]) and drives a [`Sim`] whose only events are typed
//! epoch-boundary ticks. When epoch `k`'s window closes, the controller:
//!
//! 1. counts the window's arrivals `c_k` (the final epoch's window is
//!    closed on the right, so an arrival exactly on the horizon replays
//!    exactly once);
//! 2. picks a packing degree — `no-packing` and `fixed:P` statically,
//!    `oracle` by planning with the true `c_k`, `propack:<forecaster>` by
//!    planning with the forecast `ĉ_k` built from epochs `0..k` (a cold
//!    forecaster has no information, so the first epoch runs unpacked);
//! 3. dispatches the `c_k` admitted functions as one burst through the
//!    orchestrator's retry path (faults and retries honored when
//!    configured), and records the realized service time, tail latency vs
//!    QoS, expense, and forecast error.
//!
//! Epochs are open-loop: each window's burst is an independent seeded
//! simulation (seed decorrelated per epoch), and a slow epoch never delays
//! the next boundary — the controller's cost is the *sum* of what each
//! window realized. Model fitting happens once per (platform, workload,
//! config) through [`ModelCache`], never per epoch; per-epoch planning is
//! a pure evaluation of the fitted model.
//!
//! Determinism: given `(trace, seed, controller)`, every simulated number
//! in the report is bit-identical across re-runs and across sweep thread
//! counts. Host timing (`fit_ms`, per-epoch `run_ms`) is sampled through an
//! injected clock so this crate never reads `std::time` — wall-clock-exempt
//! callers (the sweep crate) pass a real clock, everyone else gets zeros.

use std::fmt;
use std::sync::Arc;

use propack_model::{cache::ModelCache, Objective, ProPackConfig, Propack};
use propack_platform::warmpool::PoolSnapshot;
use propack_platform::{
    BurstRequest, FaultSpec, KeepAlivePolicy, RetryPolicy, ServerlessPlatform, WarmPool,
    WarmPoolConfig, WorkProfile,
};
use propack_simcore::{EpochTimeline, EventState, Sim};
use propack_stats::Percentile;

use crate::controller::Controller;
use crate::forecast::Forecaster;
use crate::report::{EpochResult, ReplayReport};
use crate::trace::ArrivalTrace;

/// Errors that abort a replay before any epoch runs. Per-epoch platform
/// rejections do *not* abort: they are recorded on the epoch's row.
#[derive(Debug)]
pub enum ReplayError {
    /// The trace has no invocations to replay.
    EmptyTrace {
        /// Trace name.
        name: String,
    },
    /// The epoch width or trace horizon is degenerate.
    InvalidEpoch {
        /// The rejected epoch width.
        epoch_secs: f64,
    },
    /// The controller needs a ProPack model and the fit failed.
    Model(propack_model::ModelError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::EmptyTrace { name } => {
                write!(f, "trace `{name}` has no invocations to replay")
            }
            ReplayError::InvalidEpoch { epoch_secs } => {
                write!(f, "invalid epoch width {epoch_secs}s")
            }
            ReplayError::Model(e) => write!(f, "model fit failed: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<propack_model::ModelError> for ReplayError {
    fn from(e: propack_model::ModelError) -> Self {
        ReplayError::Model(e)
    }
}

/// Everything about a replay except the trace, platform, and controller.
#[derive(Debug, Clone)]
pub struct ReplaySpec {
    /// Epoch (control window) width, seconds.
    pub epoch_secs: f64,
    /// Base seed; each epoch's burst derives a decorrelated seed from it.
    pub seed: u64,
    /// Objective the planning controllers optimize.
    pub objective: Objective,
    /// Per-epoch tail-latency QoS bound, seconds, if violations should be
    /// counted.
    pub qos_secs: Option<f64>,
    /// Fault rates injected into every epoch's burst.
    pub faults: FaultSpec,
    /// Retry policy for faulted bursts.
    pub retry: RetryPolicy,
    /// Keep-alive policy for the shared warm pool that persists across
    /// epochs. [`KeepAlivePolicy::ColdAlways`] (the default) runs without a
    /// pool and reproduces the pre-pool replay byte-for-byte.
    pub keepalive: KeepAlivePolicy,
    /// Model-fit configuration (shared through [`ModelCache`]).
    pub fit_config: ProPackConfig,
    /// Track per-epoch regret vs the oracle: after each epoch's burst, plan
    /// with the *true* arrival count and — when that plan differs from the
    /// controller's — replay the epoch's burst a second time (same seed,
    /// same pre-burst warm-pool state) to record what the oracle would have
    /// realized. Off by default: the shadow runs cost wall clock, and a
    /// plain replay must stay byte-identical to the pre-regret format.
    pub regret: bool,
}

impl Default for ReplaySpec {
    fn default() -> Self {
        Self {
            epoch_secs: 60.0,
            seed: 42,
            // Service time is the figure of merit the replay experiments
            // rank controllers by; expense is still reported per epoch.
            objective: Objective::ServiceTime,
            qos_secs: None,
            faults: FaultSpec::none(),
            retry: RetryPolicy::no_retries(),
            keepalive: KeepAlivePolicy::ColdAlways,
            fit_config: ProPackConfig::default(),
            regret: false,
        }
    }
}

/// The online controller runner. See the module docs for semantics.
#[derive(Debug, Clone, Default)]
pub struct ReplayEngine {
    spec: ReplaySpec,
}

impl ReplayEngine {
    /// Build an engine from a spec.
    pub fn new(spec: ReplaySpec) -> Self {
        Self { spec }
    }

    /// The spec this engine runs.
    pub fn spec(&self) -> &ReplaySpec {
        &self.spec
    }

    /// Replay `trace` on `platform` under `controller`. Host timing fields
    /// in the report are zero; use [`ReplayEngine::run_with_clock`] from a
    /// wall-clock-exempt crate to capture them.
    pub fn run<P: ServerlessPlatform + ?Sized>(
        &self,
        platform: &P,
        work: &WorkProfile,
        trace: &ArrivalTrace,
        controller: &Controller,
        models: &ModelCache,
    ) -> Result<ReplayReport, ReplayError> {
        self.run_with_clock(platform, work, trace, controller, models, &|| 0.0)
    }

    /// [`ReplayEngine::run`] with an injected host clock (seconds since an
    /// arbitrary origin) for `fit_ms` / per-epoch `run_ms` capture. The
    /// clock influences timing fields only, never simulated results.
    pub fn run_with_clock<P: ServerlessPlatform + ?Sized>(
        &self,
        platform: &P,
        work: &WorkProfile,
        trace: &ArrivalTrace,
        controller: &Controller,
        models: &ModelCache,
        clock: &dyn Fn() -> f64,
    ) -> Result<ReplayReport, ReplayError> {
        if trace.is_empty() {
            return Err(ReplayError::EmptyTrace {
                name: trace.name().to_string(),
            });
        }
        let timeline = EpochTimeline::over_horizon(self.spec.epoch_secs, trace.horizon_secs())
            .ok_or(ReplayError::InvalidEpoch {
                epoch_secs: self.spec.epoch_secs,
            })?;

        // Fit once per (platform, workload, config) — the cache coalesces
        // repeat fits across controllers, cells, and threads. Regret
        // tracking needs the model even under static controllers (the
        // oracle shadow plans with it), but the fit is then the observer's
        // instrument, so its overhead is never billed to the controller.
        let (model, model_overhead_usd, fit_ms) = if controller.needs_model() || self.spec.regret {
            let t0 = clock();
            let pp = models.fit(platform, work, &self.spec.fit_config)?;
            let fit_ms = (clock() - t0) * 1000.0;
            let overhead = if controller.needs_model() {
                pp.overhead.expense_usd
            } else {
                0.0
            };
            (Some(pp), overhead, fit_ms)
        } else {
            (None, 0.0, 0.0)
        };
        let forecaster = match controller {
            Controller::Propack(kind) => Some(kind.build()),
            _ => None,
        };

        // One pool for the whole replay: containers surviving epoch k stay
        // warm for epoch k+1 until the policy expires them. ColdAlways
        // skips the pool entirely so the cold path stays byte-identical.
        let pool = match self.spec.keepalive {
            KeepAlivePolicy::ColdAlways => None,
            policy => Some(WarmPool::new(
                WarmPoolConfig::cold()
                    .with_policy(policy)
                    .with_seed(self.spec.seed)
                    .with_placement_secs(platform.placement_secs()),
            )),
        };
        let driver = EpochDriver {
            platform,
            work,
            trace,
            timeline,
            controller,
            model,
            forecaster,
            pool,
            spec: &self.spec,
            clock,
            epochs: Vec::with_capacity(timeline.len() as usize),
        };
        let mut sim = Sim::new(driver);
        // One typed tick per epoch, fired at the instant the window closes.
        for (k, _start, end) in timeline.iter() {
            sim.schedule_event(end, EpochTick(k));
        }
        sim.run();
        let epochs = std::mem::take(&mut sim.state_mut().epochs);

        Ok(ReplayReport {
            trace: trace.name().to_string(),
            platform: platform.name(),
            workload: work.name.clone(),
            controller: controller.label(),
            epoch_secs: self.spec.epoch_secs,
            seed: self.spec.seed,
            qos_secs: self.spec.qos_secs,
            keepalive: self.spec.keepalive.label(),
            epochs,
            model_overhead_usd,
            fit_ms,
        })
    }
}

/// The typed epoch-boundary event.
struct EpochTick(u32);

/// Sim state for one replay run: borrows everything, accumulates rows.
struct EpochDriver<'a, P: ServerlessPlatform + ?Sized> {
    platform: &'a P,
    work: &'a WorkProfile,
    trace: &'a ArrivalTrace,
    timeline: EpochTimeline,
    controller: &'a Controller,
    model: Option<Arc<Propack>>,
    forecaster: Option<Box<dyn Forecaster + Send>>,
    pool: Option<WarmPool>,
    spec: &'a ReplaySpec,
    clock: &'a dyn Fn() -> f64,
    epochs: Vec<EpochResult>,
}

impl<P: ServerlessPlatform + ?Sized> EventState for EpochDriver<'_, P> {
    type Event = EpochTick;

    fn handle(sim: &mut Sim<Self>, EpochTick(k): EpochTick) {
        let st = sim.state_mut();
        let start = st.timeline.start(k);
        let end = st.timeline.end(k);
        let include_end = k + 1 == st.timeline.len();
        let arrivals = st.trace.count_window(start, end, include_end);
        let now = end.as_secs();

        // Age the pool to the dispatch instant, then freeze what the
        // planner may assume: acquisition happens inside the burst, so the
        // snapshot taken here is exactly what the request will see.
        if let Some(pool) = st.pool.as_mut() {
            pool.expire(now);
        }
        let snapshot: Option<PoolSnapshot> =
            st.pool.as_ref().map(|p| p.snapshot(&st.work.name, now));

        // The controller plans with what it knew *before* the window's
        // count is revealed; observation happens after.
        let forecast = st.forecaster.as_ref().and_then(|f| f.forecast());
        let mut error: Option<String> = None;
        let degree = match st.controller {
            Controller::NoPacking => 1,
            Controller::Fixed(p) => *p,
            Controller::Oracle => st
                .plan_degree(arrivals, snapshot.as_ref(), &mut error)
                .unwrap_or(1),
            Controller::Propack(_) => match forecast {
                // Cold start or an all-quiet forecast: no information to
                // pack on, run unpacked.
                None | Some(0) => 1,
                Some(c) => st
                    .plan_degree(c, snapshot.as_ref(), &mut error)
                    .unwrap_or(1),
            },
        };
        if let Some(f) = st.forecaster.as_mut() {
            f.observe(arrivals);
        }

        let mut row = EpochResult {
            epoch: k,
            start_secs: start.as_secs(),
            arrivals,
            forecast,
            packing_degree: degree,
            instances: 0,
            service_secs: 0.0,
            tail_secs: 0.0,
            expense_usd: 0.0,
            function_hours: 0.0,
            retries: 0,
            failed_functions: 0,
            warm_grants: 0,
            shared_grants: 0,
            qos_violation: false,
            oracle_service_secs: None,
            oracle_expense_usd: None,
            error,
            run_ms: 0.0,
        };
        if arrivals > 0 && row.error.is_none() {
            // The oracle shadow must see the warm-pool state the controller
            // saw, so its copy is taken before the real burst mutates it.
            let shadow_pool = if st.spec.regret {
                st.pool.clone()
            } else {
                None
            };
            let t0 = (st.clock)();
            let request = BurstRequest::new(st.work.clone(), arrivals, degree)
                .with_seed(epoch_seed(st.spec.seed, k))
                .with_faults(st.spec.faults)
                .with_retry(st.spec.retry);
            let outcome = match st.pool.as_mut() {
                Some(pool) => request.run_pooled(st.platform, pool, now),
                None => request.run(st.platform),
            };
            match outcome {
                Ok(run) => {
                    let faults = run.faults();
                    row.instances = run.instances();
                    row.service_secs = run.total_service_secs();
                    // Retry rounds serialize, so per-round tails add: a
                    // function finishing in round r waited out rounds < r.
                    row.tail_secs = run
                        .rounds
                        .iter()
                        .map(|r| r.service_time(Percentile::Tail95))
                        .sum();
                    row.expense_usd = run.expense_usd();
                    row.function_hours = run.function_hours();
                    row.retries = faults.retries;
                    row.failed_functions = run.abandoned_functions;
                    row.warm_grants = run.warm_grants;
                    row.shared_grants = run.shared_grants;
                    row.qos_violation = st.spec.qos_secs.is_some_and(|q| row.tail_secs > q);
                }
                Err(e) => row.error = Some(e.to_string()),
            }
            row.run_ms = ((st.clock)() - t0) * 1000.0;
            if st.spec.regret && row.error.is_none() {
                st.record_oracle_shadow(
                    &mut row,
                    arrivals,
                    degree,
                    snapshot.as_ref(),
                    shadow_pool,
                    now,
                    k,
                );
            }
        }
        st.epochs.push(row);
    }
}

impl<P: ServerlessPlatform + ?Sized> EpochDriver<'_, P> {
    /// Record what the oracle's plan for the epoch's *true* arrival count
    /// would have realized (the per-epoch regret instrumentation). When the
    /// oracle plans the degree the controller already ran, the realized row
    /// *is* the oracle outcome — no shadow burst needed; otherwise the
    /// epoch's burst replays once more with the oracle degree on the
    /// pre-burst pool copy. Shadow runs never touch live state, so regret
    /// tracking cannot perturb the replay's own numbers.
    #[allow(clippy::too_many_arguments)]
    fn record_oracle_shadow(
        &self,
        row: &mut EpochResult,
        arrivals: u32,
        degree: u32,
        snapshot: Option<&PoolSnapshot>,
        shadow_pool: Option<WarmPool>,
        now: f64,
        k: u32,
    ) {
        let mut plan_error = None;
        let Some(oracle_degree) = self.plan_degree(arrivals, snapshot, &mut plan_error) else {
            return;
        };
        if oracle_degree == degree {
            row.oracle_service_secs = Some(row.service_secs);
            row.oracle_expense_usd = Some(row.expense_usd);
            return;
        }
        let request = BurstRequest::new(self.work.clone(), arrivals, oracle_degree)
            .with_seed(epoch_seed(self.spec.seed, k))
            .with_faults(self.spec.faults)
            .with_retry(self.spec.retry);
        let outcome = match shadow_pool {
            Some(mut pool) => request.run_pooled(self.platform, &mut pool, now),
            None => request.run(self.platform),
        };
        if let Ok(run) = outcome {
            row.oracle_service_secs = Some(run.total_service_secs());
            row.oracle_expense_usd = Some(run.expense_usd());
        }
    }

    /// Plan a packing degree for concurrency `c`; `None` (with the error
    /// recorded) when planning fails, so the epoch degrades to unpacked.
    /// With a pool snapshot the fitted model's fixed-cost term is evaluated
    /// against the warm state at plan time ([`Propack::plan_with_pool`]).
    fn plan_degree(
        &self,
        c: u32,
        pool: Option<&PoolSnapshot>,
        error: &mut Option<String>,
    ) -> Option<u32> {
        if c == 0 {
            return Some(1);
        }
        let model = self.model.as_ref()?;
        let planned = match pool {
            Some(snapshot) => model.plan_with_pool(c, self.spec.objective, snapshot),
            None => model.plan(c, self.spec.objective),
        };
        match planned {
            Ok(plan) => Some(plan.packing_degree),
            Err(e) => {
                *error = Some(format!("plan failed: {e}"));
                None
            }
        }
    }
}

/// Decorrelated per-epoch seed. A plain `seed ^ k·GOLDEN` would collide
/// with the orchestrator's per-round xor (epoch 1 round 1 would reuse epoch
/// 0 round 0's seed), so the epoch index is mixed through a finalizer
/// first. Public because the fleet engine must derive the *same* seed for
/// epoch `k` of a tenant replay — single-tenant fleet output is pinned
/// bit-identical to this engine's.
pub fn epoch_seed(seed: u64, k: u32) -> u64 {
    let mut z = seed ^ u64::from(k + 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
    z ^= z >> 33;
    z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z ^ (z >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::PlatformBuilder;
    use propack_workloads::Benchmarks;

    fn small_fit() -> ProPackConfig {
        ProPackConfig {
            scaling_levels: vec![10, 20, 40],
            ..ProPackConfig::default()
        }
    }

    fn sort_profile() -> WorkProfile {
        Benchmarks::all()
            .into_iter()
            .find(|w| w.name().to_lowercase().contains("sort"))
            .map(|w| w.profile())
            .expect("sort benchmark exists")
    }

    #[test]
    fn epoch_seeds_are_decorrelated_and_distinct_from_round_seeds() {
        let base = 42;
        let golden = 0x9E37_79B9_7F4A_7C15u64;
        let mut seen = std::collections::BTreeSet::new();
        for k in 0..64 {
            let s = epoch_seed(base, k);
            assert!(seen.insert(s), "epoch seed collision at {k}");
            // Round 1 of this epoch must not reproduce any epoch's round 0.
            assert!(
                !seen.contains(&(s ^ golden)),
                "round-1 seed collides at epoch {k}"
            );
        }
    }

    #[test]
    fn replay_is_deterministic_across_reruns() {
        let platform = PlatformBuilder::aws().build();
        let work = sort_profile();
        let trace = ArrivalTrace::diurnal("sort", 1.0, 0.8, 600.0, 600.0, 7).expect("trace");
        let spec = ReplaySpec {
            epoch_secs: 100.0,
            fit_config: small_fit(),
            ..ReplaySpec::default()
        };
        let engine = ReplayEngine::new(spec);
        let controller = Controller::parse("propack:ewma").expect("controller");
        let models = ModelCache::default();
        let a = engine
            .run(&platform, &work, &trace, &controller, &models)
            .expect("first run");
        let b = engine
            .run(&platform, &work, &trace, &controller, &models)
            .expect("second run");
        assert_eq!(a.render(), b.render());
        // A cold cache must agree with the warm one (cache invisibility).
        let c = engine
            .run(
                &platform,
                &work,
                &trace,
                &controller,
                &ModelCache::default(),
            )
            .expect("cold-cache run");
        assert_eq!(a.render(), c.render());
    }

    #[test]
    fn model_fit_is_paid_once_not_per_epoch() {
        let platform = PlatformBuilder::aws().build();
        let work = sort_profile();
        let trace = ArrivalTrace::poisson("sort", 0.5, 500.0, 3).expect("trace");
        let spec = ReplaySpec {
            epoch_secs: 50.0,
            fit_config: small_fit(),
            ..ReplaySpec::default()
        };
        let models = ModelCache::default();
        let engine = ReplayEngine::new(spec);
        let report = engine
            .run(&platform, &work, &trace, &Controller::Oracle, &models)
            .expect("oracle run");
        assert!(report.epochs.len() >= 5, "several epochs replayed");
        assert_eq!(models.misses(), 1, "one fit for the whole replay");
        // A second controller on the same cache pays nothing new.
        let controller = Controller::parse("propack:window").expect("controller");
        engine
            .run(&platform, &work, &trace, &controller, &models)
            .expect("propack run");
        assert_eq!(models.misses(), 1);
        assert!(models.hits() >= 1);
    }

    #[test]
    fn cold_start_epoch_runs_unpacked_then_packs() {
        let platform = PlatformBuilder::aws().build();
        let work = sort_profile();
        let trace = ArrivalTrace::poisson("sort", 1.0, 300.0, 9).expect("trace");
        let spec = ReplaySpec {
            epoch_secs: 100.0,
            fit_config: small_fit(),
            ..ReplaySpec::default()
        };
        let controller = Controller::parse("propack:ewma").expect("controller");
        let report = ReplayEngine::new(spec)
            .run(
                &platform,
                &work,
                &trace,
                &controller,
                &ModelCache::default(),
            )
            .expect("runs");
        assert_eq!(report.epochs[0].forecast, None);
        assert_eq!(report.epochs[0].packing_degree, 1);
        assert!(
            report.epochs[1..].iter().any(|e| e.packing_degree > 1),
            "later epochs pack"
        );
        // Forecasts exist from epoch 1 on.
        assert!(report.epochs[1..].iter().all(|e| e.forecast.is_some()));
    }

    #[test]
    fn empty_and_degenerate_inputs_are_rejected() {
        let platform = PlatformBuilder::aws().build();
        let work = sort_profile();
        let empty = ArrivalTrace::from_timestamps("sort", vec![], 100.0).expect("trace");
        let engine = ReplayEngine::new(ReplaySpec::default());
        assert!(matches!(
            engine.run(
                &platform,
                &work,
                &empty,
                &Controller::NoPacking,
                &ModelCache::default()
            ),
            Err(ReplayError::EmptyTrace { .. })
        ));
        let trace = ArrivalTrace::poisson("sort", 1.0, 100.0, 1).expect("trace");
        let bad = ReplayEngine::new(ReplaySpec {
            epoch_secs: 0.0,
            ..ReplaySpec::default()
        });
        assert!(matches!(
            bad.run(
                &platform,
                &work,
                &trace,
                &Controller::NoPacking,
                &ModelCache::default()
            ),
            Err(ReplayError::InvalidEpoch { .. })
        ));
    }

    #[test]
    fn keepalive_replay_is_deterministic_and_beats_cold_on_expense() {
        let platform = PlatformBuilder::aws().build();
        let work = sort_profile();
        let trace = ArrivalTrace::diurnal("sort", 1.0, 0.8, 600.0, 600.0, 7).expect("trace");
        let controller = Controller::parse("propack:ewma").expect("controller");
        let models = ModelCache::default();
        // A cost-aware controller: warm reuse earns the storage credit at an
        // unchanged (or more packed) operating point, so expense strictly
        // improves. Under a pure service objective the planner instead
        // spends the warm pool on latency — unpacking — which is faster but
        // pricier; that trade is exercised in the propack-model tests.
        let cold = ReplayEngine::new(ReplaySpec {
            epoch_secs: 100.0,
            objective: Objective::Expense,
            fit_config: small_fit(),
            ..ReplaySpec::default()
        })
        .run(&platform, &work, &trace, &controller, &models)
        .expect("cold run");
        let warm_spec = ReplaySpec {
            epoch_secs: 100.0,
            objective: Objective::Expense,
            fit_config: small_fit(),
            keepalive: KeepAlivePolicy::FixedKeepAlive { idle_ttl: 120.0 },
            ..ReplaySpec::default()
        };
        let engine = ReplayEngine::new(warm_spec);
        let a = engine
            .run(&platform, &work, &trace, &controller, &models)
            .expect("warm run");
        let b = engine
            .run(&platform, &work, &trace, &controller, &models)
            .expect("warm rerun");
        assert_eq!(a.render(), b.render(), "warm replay is deterministic");
        assert!(
            a.total_warm_grants() > 0,
            "containers kept alive across epochs are reused"
        );
        assert!(
            a.total_expense_usd() < cold.total_expense_usd(),
            "warm reuse must cut expense: {} vs cold {}",
            a.total_expense_usd(),
            cold.total_expense_usd()
        );
        assert!(
            a.total_service_secs() <= cold.total_service_secs() + 1e-9,
            "warm starts never slow the replay: {} vs cold {}",
            a.total_service_secs(),
            cold.total_service_secs()
        );
        // The cold spec renders without any warm line at all.
        assert!(!cold.render().contains("warm:"));
        assert!(a.render().contains("warm: keepalive="));
    }

    #[test]
    fn warm_aware_service_plan_tracks_the_realized_ladder_optimum() {
        // Regression for the queue-blind pooled predictor: on the hot
        // synthetic day (EXPERIMENTS.md: `diurnal:8,0.8,600 --horizon 1200
        // --epoch 60 --keepalive fixed:60`) the warm-aware service plan used
        // to unpack all the way to P = 1 — the predictor charged warm
        // instances only their grant latency, not their share of the
        // placement queue — while the realized fixed-P ladder optimum is
        // interior. The fixed predictor's dominant chosen degree must land
        // within ±1 of the realized ladder argmin, and must not be 1.
        let platform = PlatformBuilder::aws().build();
        let work = sort_profile();
        let trace = ArrivalTrace::diurnal("sort", 8.0, 0.8, 600.0, 1200.0, 42).expect("trace");
        let models = ModelCache::default();
        let engine = ReplayEngine::new(ReplaySpec {
            epoch_secs: 60.0,
            fit_config: small_fit(),
            keepalive: KeepAlivePolicy::FixedKeepAlive { idle_ttl: 60.0 },
            ..ReplaySpec::default()
        });

        // Realized fixed-P ladder (no model involved): the hindsight optimum
        // the plan is judged against.
        let mut ladder_argmin = 0u32;
        let mut ladder_best = f64::INFINITY;
        for p in [1u32, 2, 3, 4, 6, 8] {
            let run = engine
                .run(&platform, &work, &trace, &Controller::Fixed(p), &models)
                .expect("ladder rung");
            let service = run.total_service_secs();
            if service < ladder_best {
                ladder_best = service;
                ladder_argmin = p;
            }
        }
        assert!(
            ladder_argmin > 1,
            "hot day's realized optimum is interior, got P = {ladder_argmin}"
        );

        // The warm-aware plan under the service objective.
        let controller = Controller::parse("propack:ewma").expect("controller");
        let warm = engine
            .run(&platform, &work, &trace, &controller, &models)
            .expect("warm-aware run");
        // Dominant degree = arrivals-weighted mode over the planned epochs
        // (epoch 0 is forced unpacked by the cold forecaster, skip it).
        let mut weight = std::collections::BTreeMap::new();
        for e in warm.epochs.iter().skip(1).filter(|e| e.arrivals > 0) {
            *weight.entry(e.packing_degree).or_insert(0u64) += u64::from(e.arrivals);
        }
        let dominant = weight
            .iter()
            .max_by_key(|&(_, w)| *w)
            .map(|(&p, _)| p)
            .expect("planned epochs exist");
        assert!(
            dominant > 1,
            "warm-aware service plan must not unpack to P = 1 (ladder optimum P = {ladder_argmin})"
        );
        assert!(
            dominant.abs_diff(ladder_argmin) <= 1,
            "warm-aware dominant degree {dominant} strays from realized ladder optimum {ladder_argmin}"
        );
    }

    #[test]
    fn every_arrival_is_replayed_exactly_once() {
        let platform = PlatformBuilder::aws().build();
        let work = sort_profile();
        // Horizon lands exactly on the last arrival: the inclusive final
        // window must pick it up, and only once.
        let trace =
            ArrivalTrace::from_timestamps("sort", vec![0.0, 30.0, 59.9, 60.0, 90.0, 120.0], 120.0)
                .expect("trace");
        let report = ReplayEngine::new(ReplaySpec {
            epoch_secs: 60.0,
            ..ReplaySpec::default()
        })
        .run(
            &platform,
            &work,
            &trace,
            &Controller::Fixed(2),
            &ModelCache::default(),
        )
        .expect("runs");
        assert_eq!(report.total_arrivals(), trace.len() as u64);
        let counts: Vec<u32> = report.epochs.iter().map(|e| e.arrivals).collect();
        assert_eq!(counts, vec![3, 3], "[0,60) and [60,120] with inclusive end");
    }

    #[test]
    fn oracle_controller_has_exactly_zero_regret() {
        let platform = PlatformBuilder::aws().build();
        let work = sort_profile();
        let trace = ArrivalTrace::poisson("sort", 0.8, 400.0, 11).expect("trace");
        let engine = ReplayEngine::new(ReplaySpec {
            epoch_secs: 100.0,
            fit_config: small_fit(),
            regret: true,
            ..ReplaySpec::default()
        });
        let report = engine
            .run(
                &platform,
                &work,
                &trace,
                &Controller::Oracle,
                &ModelCache::default(),
            )
            .expect("oracle run");
        // The oracle already plans with true arrivals, so the shadow's plan
        // matches every epoch and regret is identically zero (copied, not
        // re-simulated — bit-equal, no tolerance needed).
        assert_eq!(report.total_service_regret_secs(), Some(0.0));
        assert_eq!(report.total_expense_regret_usd(), Some(0.0));
        assert!(
            report
                .epochs
                .iter()
                .filter(|e| e.arrivals > 0)
                .all(|e| e.oracle_service_secs == Some(e.service_secs)),
            "every replayed epoch copies its realized service as the oracle's"
        );
    }

    #[test]
    fn static_controllers_pay_regret_but_not_model_overhead() {
        let platform = PlatformBuilder::aws().build();
        let work = sort_profile();
        let trace = ArrivalTrace::poisson("sort", 2.0, 400.0, 11).expect("trace");
        let base = ReplaySpec {
            epoch_secs: 100.0,
            fit_config: small_fit(),
            ..ReplaySpec::default()
        };
        let models = ModelCache::default();
        let plain = ReplayEngine::new(base.clone())
            .run(&platform, &work, &trace, &Controller::NoPacking, &models)
            .expect("plain run");
        let tracked = ReplayEngine::new(ReplaySpec {
            regret: true,
            ..base
        })
        .run(&platform, &work, &trace, &Controller::NoPacking, &models)
        .expect("regret run");
        // Regret is pure instrumentation: the realized epochs are untouched,
        // only the oracle columns and the summary line are added.
        assert!(!plain.render().contains("regret"));
        assert!(tracked.render().contains("regret: service_s="));
        assert_eq!(plain.total_service_secs(), tracked.total_service_secs());
        assert_eq!(plain.total_expense_usd(), tracked.total_expense_usd());
        // An unpacked burst under load is service-slower than the oracle's
        // packed plan, so the gap is strictly positive for this trace.
        let gap = tracked.total_service_regret_secs().expect("tracked");
        assert!(gap > 0.0, "no-packing leaves service on the table: {gap}");
        // The model exists only to score the shadow: a static controller is
        // not billed for it.
        assert_eq!(tracked.model_overhead_usd, 0.0);
        assert_eq!(models.misses(), 1, "regret shadow fits through the cache");
        // Rerun determinism with the shadow path on.
        let again = ReplayEngine::new(ReplaySpec {
            epoch_secs: 100.0,
            fit_config: small_fit(),
            regret: true,
            ..ReplaySpec::default()
        })
        .run(&platform, &work, &trace, &Controller::NoPacking, &models)
        .expect("regret rerun");
        assert_eq!(tracked.render(), again.render());
    }
}
