//! Fixture for the `event-alloc` rule: boxed closures handed to the
//! scheduler. Never compiled — lexed by the simlint unit tests.

fn bad(sim: &mut Sim) {
    // Closure boxed per event on the hot path: flagged.
    sim.schedule(SimTime::ZERO, Box::new(move |sim| tick(sim)));
    // Any `schedule_*` spelling is covered.
    sim.schedule_in(delay, Box::new(|sim| drain(sim)));
}

fn good(sim: &mut Sim) {
    // Typed events through the pooled queue: clean.
    sim.schedule_event(SimTime::ZERO, Ev::Tick);
    sim.schedule_batch(SimTime::ZERO, (0..n).map(Ev::Invoke));
    // A box outside any schedule call is someone else's business.
    let _cb: Box<dyn Fn()> = Box::new(|| {});
}

fn justified(sim: &mut Sim) {
    // simlint: allow(event-alloc): "one-shot setup event, not per-instance"
    sim.schedule(SimTime::ZERO, Box::new(|sim| init(sim)));
}

#[cfg(test)]
mod tests {
    #[test]
    fn closures_fine_in_tests() {
        sim.schedule(SimTime::ZERO, Box::new(|sim| probe(sim)));
    }
}
