//! Property-based tests for the statistics substrate.

use propack_stats::chi2::{chi2_cdf, chi2_quantile, chi2_statistic};
use propack_stats::models::{fit, ModelKind};
use propack_stats::percentile::{percentile, service_metrics};
use propack_stats::regression::linear_fit;
use propack_stats::special::{gamma_p, ln_gamma};
use propack_stats::{polyfit, Summary};
use proptest::prelude::*;

proptest! {
    /// polyfit recovers planted quadratic coefficients from exact data,
    /// for any well-spread sample grid and coefficient magnitudes.
    #[test]
    fn polyfit_recovers_planted_quadratic(
        a in -100.0f64..100.0,
        b in -10.0f64..10.0,
        c in -1.0f64..1.0,
        x0 in 0.1f64..50.0,
        dx in 0.5f64..100.0,
    ) {
        let xs: Vec<f64> = (0..12).map(|i| x0 + dx * i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| a + b * x + c * x * x).collect();
        let f = polyfit(&xs, &ys, 2).unwrap();
        let scale = a.abs().max(b.abs()).max(c.abs()).max(1.0);
        prop_assert!((f.coeffs[0] - a).abs() < 1e-6 * scale * 100.0, "a: {} vs {}", f.coeffs[0], a);
        prop_assert!((f.coeffs[1] - b).abs() < 1e-6 * scale * 10.0);
        prop_assert!((f.coeffs[2] - c).abs() < 1e-7 * scale * 10.0);
    }

    /// The fitted polynomial's predictions interpolate the training data
    /// even under small multiplicative noise.
    #[test]
    fn polyfit_interpolates_under_noise(noise in 0.0f64..0.02, seed in any::<u64>()) {
        let xs: Vec<f64> = (1..=15).map(|i| i as f64 * 100.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let wiggle = if (seed >> (i % 60)) & 1 == 1 { 1.0 + noise } else { 1.0 - noise };
                (2e-5 * x * x + 0.1 * x) * wiggle
            })
            .collect();
        let f = polyfit(&xs, &ys, 2).unwrap();
        // Least-squares residuals are bounded by the noise floor measured
        // against the data's scale (small-y points can carry larger
        // *relative* residuals because large-y points dominate the fit).
        let y_max = ys.iter().copied().fold(0.0f64, f64::max);
        for (&x, &y) in xs.iter().zip(&ys) {
            prop_assert!((f.eval(x) - y).abs() < 2.0 * noise * y_max + 1e-9);
        }
    }

    /// Linear fit is exact on lines.
    #[test]
    fn linear_fit_exact(a in -1e3f64..1e3, b in -1e3f64..1e3) {
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| a + b * x).collect();
        let (fa, fb) = linear_fit(&xs, &ys).unwrap();
        prop_assert!((fa - a).abs() < 1e-7 * (1.0 + a.abs()));
        prop_assert!((fb - b).abs() < 1e-7 * (1.0 + b.abs()));
    }

    /// Exponential fit round-trips positive exponentials.
    #[test]
    fn exponential_fit_round_trips(a in 0.1f64..1e3, k in -0.3f64..0.3) {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| a * (k * x).exp()).collect();
        let f = fit(ModelKind::Exponential, &xs, &ys).unwrap();
        prop_assert!((f.params[0] - a).abs() / a < 1e-6);
        prop_assert!((f.params[1] - k).abs() < 1e-8);
    }

    /// χ² CDF is a CDF: in [0, 1], monotone in x, and the quantile is its
    /// inverse.
    #[test]
    fn chi2_cdf_properties(dof in 1.0f64..100.0, x in 0.0f64..500.0, dx in 0.1f64..50.0) {
        let p1 = chi2_cdf(x, dof).unwrap();
        let p2 = chi2_cdf(x + dx, dof).unwrap();
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p2 >= p1);
    }

    #[test]
    fn chi2_quantile_inverts_cdf(dof in 1.0f64..60.0, q in 0.01f64..0.99) {
        let x = chi2_quantile(q, dof).unwrap();
        let back = chi2_cdf(x, dof).unwrap();
        prop_assert!((back - q).abs() < 1e-6, "{back} vs {q}");
    }

    /// The Pearson statistic is non-negative, zero iff observed == expected.
    #[test]
    fn chi2_statistic_nonnegative(obs in prop::collection::vec(0.1f64..100.0, 1..20)) {
        let expected: Vec<f64> = obs.iter().map(|o| o + 1.0).collect();
        let s = chi2_statistic(&obs, &expected).unwrap();
        prop_assert!(s > 0.0);
        let zero = chi2_statistic(&obs, &obs).unwrap();
        prop_assert!(zero.abs() < 1e-12);
    }

    /// Percentiles are bounded by the extremes and monotone in q.
    #[test]
    fn percentile_bounds(values in prop::collection::vec(-1e6f64..1e6, 1..200), q in 0.0f64..1.0) {
        let p = percentile(&values, q).unwrap();
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        let p_more = percentile(&values, (q + 0.1).min(1.0)).unwrap();
        prop_assert!(p_more >= p - 1e-9);
    }

    /// service_metrics ordering invariant: total ≥ tail ≥ median.
    #[test]
    fn service_metric_ordering(values in prop::collection::vec(0.0f64..1e5, 1..300)) {
        let [total, tail, median] = propack_stats::percentile::service_metrics(&values).unwrap();
        prop_assert!(total >= tail && tail >= median);
        let _ = service_metrics(&values).unwrap();
    }

    /// Summary::merge is equivalent to sequential accumulation at any
    /// split point.
    #[test]
    fn summary_merge_associative(
        values in prop::collection::vec(-1e3f64..1e3, 2..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((values.len() as f64 * split_frac) as usize).min(values.len());
        let whole = Summary::from_slice(&values);
        let mut left = Summary::from_slice(&values[..split]);
        left.merge(&Summary::from_slice(&values[split..]));
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-8);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6 * (1.0 + whole.variance()));
    }

    /// ln Γ satisfies the recurrence Γ(x+1) = x·Γ(x).
    #[test]
    fn ln_gamma_recurrence(x in 0.1f64..50.0) {
        let lhs = ln_gamma(x + 1.0).unwrap();
        let rhs = x.ln() + ln_gamma(x).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    /// Regularized incomplete gamma is monotone in x and bounded.
    #[test]
    fn gamma_p_monotone(a in 0.5f64..50.0, x in 0.0f64..200.0, dx in 0.01f64..20.0) {
        let p1 = gamma_p(a, x).unwrap();
        let p2 = gamma_p(a, x + dx).unwrap();
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p2 >= p1 - 1e-12);
    }
}
