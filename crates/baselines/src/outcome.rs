//! A technique-agnostic run outcome, so every strategy (baseline, Pywren,
//! ProPack, Oracle) is comparable through one interface.

use propack_platform::{FaultSummary, RunReport};
use propack_stats::percentile::{quantile_sorted, Percentile};
use serde::{Deserialize, Serialize};

/// The outcome of executing `C` functions with some strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyOutcome {
    /// Strategy display name.
    pub strategy: String,
    /// Per-instance completion times, seconds since submission (sorted).
    pub completion_times: Vec<f64>,
    /// Scaling time (first provision → last instance start), seconds.
    /// For multi-wave strategies this is the last wave-relative start plus
    /// its wave offset — the end-to-end spawning span.
    pub scaling_secs: f64,
    /// Total bill in USD (including any strategy-specific overhead).
    pub expense_usd: f64,
    /// Billed compute in function-hours.
    pub function_hours: f64,
    /// Packing degree used (1 for non-packing strategies).
    pub packing_degree: u32,
    /// Fault and retry counters aggregated over every burst the strategy
    /// launched (all-zero when faults are disabled).
    #[serde(default)]
    pub faults: FaultSummary,
}

impl StrategyOutcome {
    /// Build an outcome from a single platform burst report.
    pub fn from_report(strategy: impl Into<String>, report: &RunReport) -> Self {
        let mut completion_times: Vec<f64> =
            report.instances.iter().map(|i| i.finished_at).collect();
        completion_times.sort_by(f64::total_cmp);
        StrategyOutcome {
            strategy: strategy.into(),
            completion_times,
            scaling_secs: report.scaling_time(),
            expense_usd: report.expense.total_usd(),
            function_hours: report.function_hours(),
            packing_degree: report.packing_degree,
            faults: report.faults,
        }
    }

    /// Merge wave outcomes whose submissions were offset in time: wave `k`'s
    /// completions (and spawning span) shift by `offsets[k]`.
    pub fn merge_waves(strategy: impl Into<String>, waves: &[(f64, RunReport)]) -> Self {
        let mut completion_times = Vec::new();
        let mut expense_usd = 0.0;
        let mut function_hours = 0.0;
        let mut scaling_secs: f64 = 0.0;
        let mut packing_degree = 1;
        let mut faults = FaultSummary::default();
        for (offset, report) in waves {
            completion_times.extend(report.instances.iter().map(|i| i.finished_at + offset));
            expense_usd += report.expense.total_usd();
            function_hours += report.function_hours();
            scaling_secs = scaling_secs.max(offset + report.scaling_time());
            packing_degree = report.packing_degree;
            faults.merge(&report.faults);
        }
        completion_times.sort_by(f64::total_cmp);
        StrategyOutcome {
            strategy: strategy.into(),
            completion_times,
            scaling_secs,
            expense_usd,
            function_hours,
            packing_degree,
            faults,
        }
    }

    /// Service time at the paper's figure of merit (total / tail / median).
    pub fn service_secs(&self, metric: Percentile) -> f64 {
        if self.completion_times.is_empty() {
            return 0.0;
        }
        quantile_sorted(&self.completion_times, metric.quantile())
    }

    /// Total service time (all instances complete).
    pub fn total_service_secs(&self) -> f64 {
        self.service_secs(Percentile::Total)
    }

    /// Percentage improvement of `self` over `baseline` in a metric
    /// extracted by `f` (positive = `self` is better/lower).
    pub fn improvement_over(
        &self,
        baseline: &StrategyOutcome,
        f: impl Fn(&StrategyOutcome) -> f64,
    ) -> f64 {
        let b = f(baseline);
        if b == 0.0 {
            return 0.0;
        }
        100.0 * (1.0 - f(self) / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propack_platform::{BurstSpec, PlatformBuilder, ServerlessPlatform, WorkProfile};

    fn report(c: u32, p: u32) -> RunReport {
        PlatformBuilder::aws()
            .build()
            .run_burst(&BurstSpec::new(
                WorkProfile::synthetic("w", 0.25, 50.0),
                c,
                p,
            ))
            .unwrap()
    }

    #[test]
    fn from_report_round_trips_metrics() {
        let r = report(100, 1);
        let o = StrategyOutcome::from_report("test", &r);
        assert_eq!(o.completion_times.len(), 100);
        assert!((o.total_service_secs() - r.total_service_time()).abs() < 1e-12);
        assert!((o.scaling_secs - r.scaling_time()).abs() < 1e-12);
        assert!((o.expense_usd - r.expense.total_usd()).abs() < 1e-12);
    }

    #[test]
    fn merge_waves_offsets_completions() {
        let r1 = report(50, 1);
        let r2 = report(50, 1);
        let offset = r1.total_service_time();
        let merged = StrategyOutcome::merge_waves("waves", &[(0.0, r1.clone()), (offset, r2)]);
        assert_eq!(merged.completion_times.len(), 100);
        assert!(merged.total_service_secs() > r1.total_service_time() * 1.9);
        // Expense adds across waves.
        assert!((merged.expense_usd - 2.0 * r1.expense.total_usd()).abs() < 1e-9);
    }

    #[test]
    fn improvement_math() {
        let r = report(100, 1);
        let base = StrategyOutcome::from_report("base", &r);
        let mut better = base.clone();
        better.expense_usd = base.expense_usd / 2.0;
        let imp = better.improvement_over(&base, |o| o.expense_usd);
        assert!((imp - 50.0).abs() < 1e-9);
    }

    #[test]
    fn metric_ordering() {
        let o = StrategyOutcome::from_report("t", &report(200, 1));
        assert!(o.service_secs(Percentile::Total) >= o.service_secs(Percentile::Tail95));
        assert!(o.service_secs(Percentile::Tail95) >= o.service_secs(Percentile::Median));
    }
}
