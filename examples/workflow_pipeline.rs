//! End-to-end workflows through the Step-Functions-style orchestrator:
//! the paper's Sort benchmark as the three-stage pipeline it really is
//! (map → concurrent sort → reduce), with and without ProPack packing the
//! fan-out.
//!
//! ```sh
//! cargo run --release --example workflow_pipeline
//! ```

use propack_repro::orchestrator::{execute, MapPacking, Workflow};
use propack_repro::platform::PlatformBuilder;
use propack_repro::workloads::{sort::MapReduceSort, Workload};

fn main() {
    let platform = PlatformBuilder::aws().build();
    let sorter = MapReduceSort::default().profile();
    let c = 3000;

    println!("map-reduce-sort workflow, {c}-way sort fan-out\n");
    for (label, packing) in [
        ("no packing", MapPacking::None),
        ("fixed degree 4", MapPacking::Fixed(4)),
        ("propack (joint)", MapPacking::ProPack { w_s: 0.5 }),
    ] {
        let wf = Workflow::map_reduce_sort(sorter.clone(), c, packing);
        let report = execute(&platform, &wf, 21).expect("workflow run");
        println!("{label}:");
        for s in &report.states {
            println!(
                "  {:<8} t+{:>5.0}s  {:>6.0}s  ${:>7.2}  degree {:>2} × {:>4} instances",
                s.name,
                s.start_offset_secs,
                s.duration_secs,
                s.expense_usd,
                s.packing_degree,
                s.instances
            );
        }
        println!(
            "  total    {:>6.0}s  ${:.2} ({:.1} function-hours)\n",
            report.total_secs, report.expense_usd, report.function_hours
        );
    }
    println!(
        "The coordination stages are identical in every variant — the whole \
         difference is how the fan-out stage is packed."
    );
}
