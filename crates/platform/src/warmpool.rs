//! Platform-level warm pool: instance keep-alive lifecycle policies.
//!
//! Commercial platforms do not tear a microVM down the instant its function
//! returns — they keep it *warm* for a while so the next invocation of the
//! same function skips scheduling's build/ship/provision stages and starts
//! in tens of milliseconds. The paper's platform model (§2) cold-starts
//! everything, which makes packing the only cost/latency lever; this module
//! adds the second lever as a first-class API the planner can see.
//!
//! A [`WarmPool`] is a bounded set of idle containers, each remembering
//! which function it is specialized for and since when it has been idle.
//! A [`KeepAlivePolicy`] decides how long idle containers stay usable:
//!
//! * [`KeepAlivePolicy::ColdAlways`] — the pre-warm-pool behaviour: the pool
//!   never grants anything, every start is cold. Runs under this policy are
//!   bit-identical to runs with no pool at all.
//! * [`KeepAlivePolicy::FixedKeepAlive`] — the industry default (Azure/
//!   OpenWhisk style): containers idle longer than `idle_ttl` expire.
//! * [`KeepAlivePolicy::HybridHistogram`] — the Serverless-in-the-Wild
//!   policy: a per-function histogram of observed idle times picks the
//!   keep-alive window as the `keep_percentile` quantile of the
//!   distribution, clamped to `max_ttl`; functions without enough history
//!   fall back to the full window.
//! * [`KeepAlivePolicy::PagurusShare`] — Pagurus-style inter-function
//!   sharing: a container whose own-function TTL has lapsed is not
//!   discarded but becomes a *standby* donor for one more TTL window, and
//!   can be re-specialized for another function at a reduced (not zero)
//!   warm cost.
//!
//! ## Determinism
//!
//! The pool lives entirely in simulated time — callers pass `now` in
//! simulation seconds, never wall-clock. Entries are held oldest-first in a
//! `Vec` ordered by `(idle_since, insertion sequence)`; eviction pops the
//! front and acquisition scans front-to-back, so every decision is a pure
//! function of the operation history. The single stochastic choice —
//! which standby donor Pagurus re-specializes — draws from the dedicated
//! [`lanes::KEEPALIVE_PAGURUS`] RNG lane indexed by a draw counter, so the
//! donor sequence is a pure function of `(seed, draw index)` and cannot
//! perturb any other lane.

use propack_simcore::rng::lanes;
use propack_simcore::RngStreams;
use rand::Rng;
use std::collections::BTreeMap;

/// Default pool capacity, in containers. This is the single source of truth
/// for Pywren-style reuse pools (`propack_baselines::Pywren` sizes its pool
/// from here): one warm slot per server of the default cloud fleet.
pub const DEFAULT_POOL_CAPACITY: u32 = 2_000;

/// Latency of a warm start in seconds: the container is built, shipped and
/// provisioned already, so only runtime dispatch remains. This is the same
/// constant the burst pipeline has always used for `warm_fraction`
/// instances, hoisted here so the pool and the pipeline cannot drift.
pub const WARM_START_SECS: f64 = 0.05;

/// Multiplier over [`WARM_START_SECS`] for a Pagurus re-specialization:
/// swapping another function's code into a live container costs more than a
/// same-function warm start but far less than a cold build/ship/provision.
pub const RESPECIALIZE_FACTOR: f64 = 6.0;

/// How long an idle container stays warm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeepAlivePolicy {
    /// Never keep anything warm — bit-identical to the pre-pool platform.
    ColdAlways,
    /// Expire containers idle longer than `idle_ttl` seconds.
    FixedKeepAlive {
        /// Idle time-to-live in seconds.
        idle_ttl: f64,
    },
    /// Serverless-in-the-Wild hybrid policy: per-function idle-time
    /// histograms choose the keep-alive window.
    HybridHistogram {
        /// Histogram bin width in seconds.
        bin_secs: f64,
        /// Fraction of observed idle times the window must cover.
        keep_percentile: f64,
        /// Upper bound on the window (and the cold-history fallback).
        max_ttl: f64,
    },
    /// Pagurus-style sharing: expired containers linger one more TTL as
    /// standby donors that other functions can re-specialize cheaply.
    PagurusShare {
        /// Own-function idle time-to-live in seconds.
        idle_ttl: f64,
    },
}

impl KeepAlivePolicy {
    /// Human-readable label, mirroring the sweep scenario grammar.
    pub fn label(&self) -> String {
        match self {
            KeepAlivePolicy::ColdAlways => "cold".to_string(),
            KeepAlivePolicy::FixedKeepAlive { idle_ttl } => format!("fixed:{idle_ttl}"),
            KeepAlivePolicy::HybridHistogram { .. } => "histogram".to_string(),
            KeepAlivePolicy::PagurusShare { .. } => "pagurus".to_string(),
        }
    }
}

/// Pool configuration: capacity, start latencies, policy and RNG seed.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmPoolConfig {
    /// Maximum containers the pool holds; check-ins beyond it evict the
    /// oldest entry.
    pub capacity: u32,
    /// Latency granted for a same-function warm start.
    pub warm_start_secs: f64,
    /// Latency granted for a Pagurus re-specialization.
    pub respecialize_secs: f64,
    /// The keep-alive policy.
    pub policy: KeepAlivePolicy,
    /// Seed for the pool's RNG lanes (donor selection).
    pub seed: u64,
    /// The platform's per-placement scheduler latency, surfaced to the
    /// planner through [`PoolSnapshot`]. Every placement — warm or cold —
    /// waits its turn behind the central scheduler, but the fitted model's
    /// linear term conflates that cost with the build/ship pipeline warm
    /// starts skip, so the planner needs it separately. Zero when unknown
    /// (the predictor then falls back to its quadratic queue share only).
    pub sched_secs_per_placement: f64,
}

impl WarmPoolConfig {
    /// The no-op pool: [`KeepAlivePolicy::ColdAlways`] at default capacity.
    pub fn cold() -> Self {
        WarmPoolConfig {
            capacity: DEFAULT_POOL_CAPACITY,
            warm_start_secs: WARM_START_SECS,
            respecialize_secs: WARM_START_SECS * RESPECIALIZE_FACTOR,
            policy: KeepAlivePolicy::ColdAlways,
            seed: 0,
            sched_secs_per_placement: 0.0,
        }
    }

    /// Replace the policy.
    pub fn with_policy(mut self, policy: KeepAlivePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Record the platform's per-placement scheduler latency
    /// ([`crate::ServerlessPlatform::placement_secs`]) for planner
    /// snapshots.
    pub fn with_placement_secs(mut self, secs: f64) -> Self {
        self.sched_secs_per_placement = secs;
        self
    }

    /// Replace the capacity.
    pub fn with_capacity(mut self, capacity: u32) -> Self {
        self.capacity = capacity;
        self
    }

    /// Replace the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for WarmPoolConfig {
    fn default() -> Self {
        WarmPoolConfig::cold()
    }
}

/// Lifecycle state of a pooled container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Within its own-function keep-alive window.
    Live,
    /// Pagurus only: own-function TTL lapsed; available as a donor for one
    /// more TTL window.
    Standby,
}

#[derive(Debug, Clone)]
struct WarmEntry {
    function: String,
    idle_since: f64,
    /// Insertion sequence — the deterministic tiebreak for equal
    /// `idle_since` (all containers of one burst check in at one instant).
    sequence: u64,
    state: EntryState,
}

/// Counters describing what the pool did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmPoolStats {
    /// Same-function warm starts granted.
    pub warm_grants: u64,
    /// Pagurus re-specializations granted.
    pub shared_grants: u64,
    /// Acquisitions that found nothing warm (cold starts).
    pub cold_misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries dropped by TTL/window expiry.
    pub expirations: u64,
}

/// The outcome of one counted acquisition ([`WarmPool::acquire_counted`]):
/// the granted start latencies plus the warm/shared split this particular
/// call produced — what a split-phase submission
/// ([`crate::BurstRequest::run_granted`]) needs to carry into the burst.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolGrant {
    /// Granted start latencies, same-function warm starts first.
    pub grants: Vec<f64>,
    /// Same-function warm starts among the grants.
    pub warm: u64,
    /// Pagurus re-specializations among the grants.
    pub shared: u64,
}

impl PoolGrant {
    /// The empty grant: every instance cold-starts.
    pub fn cold() -> Self {
        Self::default()
    }
}

/// What the planner sees when it asks about pool state ahead of a burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolSnapshot {
    /// Same-function containers currently warm.
    pub warm_available: u32,
    /// Other-function standby containers a Pagurus policy could donate.
    pub shared_available: u32,
    /// Latency of a same-function warm start.
    pub warm_start_secs: f64,
    /// Latency of a re-specialized start.
    pub respecialize_secs: f64,
    /// The platform's per-placement scheduler latency — the linear
    /// control-plane cost every placement pays whether it starts warm or
    /// cold (see [`WarmPoolConfig::sched_secs_per_placement`]).
    pub sched_secs_per_placement: f64,
}

impl PoolSnapshot {
    /// A snapshot with nothing warm (cold planning).
    pub fn cold() -> Self {
        PoolSnapshot {
            warm_available: 0,
            shared_available: 0,
            warm_start_secs: WARM_START_SECS,
            respecialize_secs: WARM_START_SECS * RESPECIALIZE_FACTOR,
            sched_secs_per_placement: 0.0,
        }
    }

    /// Containers available to the named function from any source.
    pub fn total_available(&self) -> u32 {
        self.warm_available + self.shared_available
    }
}

/// Per-function histogram of observed idle times (Serverless in the Wild,
/// §4.2): each reuse records how long the container had been idle; the
/// keep-alive window is the smallest bin boundary covering
/// `keep_percentile` of the observations.
#[derive(Debug, Clone, Default)]
struct IdleHistogram {
    /// Bin counts; bin `k` covers `[k·bin_secs, (k+1)·bin_secs)`.
    bins: Vec<u64>,
    observations: u64,
}

/// Observations below which the histogram policy falls back to `max_ttl`
/// (not enough history to trust a narrow window).
const HISTOGRAM_MIN_OBSERVATIONS: u64 = 4;

impl IdleHistogram {
    fn observe(&mut self, idle_secs: f64, bin_secs: f64) {
        if !(idle_secs.is_finite() && bin_secs > 0.0) {
            return;
        }
        let bin = (idle_secs / bin_secs).floor().min(4_096.0).max(0.0) as usize;
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
        self.observations += 1;
    }

    /// The keep-alive window: upper edge of the smallest bin prefix covering
    /// `keep_percentile` of observations, clamped to `max_ttl`.
    fn window(&self, bin_secs: f64, keep_percentile: f64, max_ttl: f64) -> f64 {
        if self.observations < HISTOGRAM_MIN_OBSERVATIONS {
            return max_ttl;
        }
        let need = (self.observations as f64 * keep_percentile).ceil() as u64;
        let mut seen = 0u64;
        for (k, count) in self.bins.iter().enumerate() {
            seen += count;
            if seen >= need {
                return ((k as f64 + 1.0) * bin_secs).min(max_ttl);
            }
        }
        max_ttl
    }
}

/// A bounded pool of idle warm containers governed by a [`KeepAlivePolicy`].
///
/// All methods take `now` in simulation seconds. The pool is deliberately
/// not `Sync` — it models a platform-level singleton mutated between bursts
/// (sweep cells own one pool each; replay drivers persist one across
/// epochs).
#[derive(Debug, Clone)]
pub struct WarmPool {
    config: WarmPoolConfig,
    /// Oldest-first by `(idle_since, sequence)` — maintained on insertion,
    /// so eviction order is reproducible by construction.
    entries: Vec<WarmEntry>,
    histograms: BTreeMap<String, IdleHistogram>,
    streams: RngStreams,
    next_sequence: u64,
    donor_draws: u64,
    stats: WarmPoolStats,
}

impl WarmPool {
    /// An empty pool under `config`.
    pub fn new(config: WarmPoolConfig) -> Self {
        let streams = RngStreams::new(config.seed);
        WarmPool {
            config,
            entries: Vec::new(),
            histograms: BTreeMap::new(),
            streams,
            next_sequence: 0,
            donor_draws: 0,
            stats: WarmPoolStats::default(),
        }
    }

    /// A Pywren-style pre-warmed pool: `size` containers of `function`
    /// checked in at t = 0 under an effectively infinite keep-alive, so the
    /// first burst sees exactly `min(size, burst)` warm starts.
    pub fn pywren_prewarmed(function: &str, size: u32) -> Self {
        let mut pool = WarmPool::new(WarmPoolConfig::cold().with_capacity(size).with_policy(
            KeepAlivePolicy::FixedKeepAlive {
                idle_ttl: f64::INFINITY,
            },
        ));
        pool.check_in(function, size, 0.0);
        pool
    }

    /// The configuration the pool was built with.
    pub fn config(&self) -> &WarmPoolConfig {
        &self.config
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WarmPoolStats {
        self.stats
    }

    /// Containers currently pooled (live and standby).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is pooled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The keep-alive window for `function` at the current history.
    pub fn keep_alive_window(&self, function: &str) -> f64 {
        match self.config.policy {
            KeepAlivePolicy::ColdAlways => 0.0,
            KeepAlivePolicy::FixedKeepAlive { idle_ttl } => idle_ttl,
            KeepAlivePolicy::PagurusShare { idle_ttl } => idle_ttl,
            KeepAlivePolicy::HybridHistogram {
                bin_secs,
                keep_percentile,
                max_ttl,
            } => self
                .histograms
                .get(function)
                .map(|h| h.window(bin_secs, keep_percentile, max_ttl))
                .unwrap_or(max_ttl),
        }
    }

    /// Drop (or demote, under Pagurus) entries whose window lapsed by `now`.
    pub fn expire(&mut self, now: f64) {
        match self.config.policy {
            KeepAlivePolicy::ColdAlways => {
                self.stats.expirations += self.entries.len() as u64;
                self.entries.clear();
            }
            KeepAlivePolicy::FixedKeepAlive { idle_ttl } => {
                let expired = self
                    .entries
                    .iter()
                    .filter(|e| now - e.idle_since > idle_ttl)
                    .count();
                self.stats.expirations += expired as u64;
                self.entries.retain(|e| now - e.idle_since <= idle_ttl);
            }
            KeepAlivePolicy::HybridHistogram { .. } => {
                // Window depends on the entry's function; compute per entry.
                let windows: Vec<f64> = self
                    .entries
                    .iter()
                    .map(|e| self.keep_alive_window(&e.function))
                    .collect();
                let mut kept = Vec::with_capacity(self.entries.len());
                for (entry, window) in self.entries.drain(..).zip(windows) {
                    if now - entry.idle_since <= window {
                        kept.push(entry);
                    } else {
                        self.stats.expirations += 1;
                    }
                }
                self.entries = kept;
            }
            KeepAlivePolicy::PagurusShare { idle_ttl } => {
                // Lapsed live entries become standby donors for one more
                // window; lapsed standby entries are reclaimed for real.
                let mut kept = Vec::with_capacity(self.entries.len());
                for mut entry in self.entries.drain(..) {
                    let idle = now - entry.idle_since;
                    match entry.state {
                        EntryState::Live if idle > idle_ttl => {
                            entry.state = EntryState::Standby;
                            if idle <= 2.0 * idle_ttl {
                                kept.push(entry);
                            } else {
                                self.stats.expirations += 1;
                            }
                        }
                        EntryState::Standby if idle > 2.0 * idle_ttl => {
                            self.stats.expirations += 1;
                        }
                        _ => kept.push(entry),
                    }
                }
                self.entries = kept;
            }
        }
    }

    /// [`WarmPool::acquire`] with the warm/shared split of *this call*
    /// attached (computed from the stats delta, exactly as the pooled
    /// submission path does internally). Use with
    /// [`crate::BurstRequest::run_granted`] when acquisition must happen in
    /// a serial phase separate from burst execution.
    pub fn acquire_counted(&mut self, function: &str, want: u32, now: f64) -> PoolGrant {
        let before = self.stats();
        let grants = self.acquire(function, want, now);
        let after = self.stats();
        PoolGrant {
            grants,
            warm: after.warm_grants - before.warm_grants,
            shared: after.shared_grants - before.shared_grants,
        }
    }

    /// Take up to `want` warm containers for `function` at time `now`.
    ///
    /// Returns the granted start latencies, same-function warm starts first
    /// (each [`WarmPoolConfig::warm_start_secs`]), then — under Pagurus —
    /// re-specialized donors (each [`WarmPoolConfig::respecialize_secs`]).
    /// The shortfall versus `want` is the number of cold starts the caller
    /// must perform.
    pub fn acquire(&mut self, function: &str, want: u32, now: f64) -> Vec<f64> {
        self.expire(now);
        if want == 0 || matches!(self.config.policy, KeepAlivePolicy::ColdAlways) {
            self.stats.cold_misses += u64::from(want);
            return Vec::new();
        }
        let mut grants = Vec::new();

        // Same-function live entries, oldest first (front-to-back): the
        // container closest to expiry is reused first, which maximises the
        // chance every pooled container is reused before its window lapses.
        let mut idx = 0;
        while idx < self.entries.len() && (grants.len() as u32) < want {
            let matches = self.entries[idx].state == EntryState::Live
                && self.entries[idx].function == function;
            if matches {
                let entry = self.entries.remove(idx);
                self.record_idle(function, now - entry.idle_since);
                grants.push(self.config.warm_start_secs);
            } else {
                idx += 1;
            }
        }

        // Pagurus: fill the shortfall from standby donors of any function,
        // donor picked by the dedicated RNG lane.
        if matches!(self.config.policy, KeepAlivePolicy::PagurusShare { .. }) {
            while (grants.len() as u32) < want {
                let donors: Vec<usize> = self
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.state == EntryState::Standby)
                    .map(|(k, _)| k)
                    .collect();
                if donors.is_empty() {
                    break;
                }
                let mut rng = self
                    .streams
                    .stream_indexed(lanes::KEEPALIVE_PAGURUS, self.donor_draws);
                self.donor_draws += 1;
                let pick = donors[(rng.random::<u64>() % donors.len() as u64) as usize];
                self.entries.remove(pick);
                self.stats.shared_grants += 1;
                grants.push(self.config.respecialize_secs);
            }
        }

        let warm = grants
            .iter()
            .filter(|g| **g <= self.config.warm_start_secs)
            .count() as u64;
        self.stats.warm_grants += warm;
        self.stats.cold_misses += u64::from(want) - grants.len() as u64;
        grants
    }

    /// Return `count` containers of `function` to the pool at time `now`.
    ///
    /// The capacity bound evicts the oldest entries (front of the ordered
    /// vector) — deterministic because the order is maintained on insertion.
    pub fn check_in(&mut self, function: &str, count: u32, now: f64) {
        if matches!(self.config.policy, KeepAlivePolicy::ColdAlways) {
            return;
        }
        for _ in 0..count {
            let entry = WarmEntry {
                function: function.to_string(),
                idle_since: now,
                sequence: self.next_sequence,
                state: EntryState::Live,
            };
            self.next_sequence += 1;
            // Maintain oldest-first (idle_since, sequence) order. Check-ins
            // happen in nondecreasing simulated time, so this is a push;
            // the insertion sort is a guard for out-of-order callers.
            let pos = self
                .entries
                .iter()
                .rposition(|e| (e.idle_since, e.sequence) <= (entry.idle_since, entry.sequence))
                .map(|p| p + 1)
                .unwrap_or(0);
            self.entries.insert(pos, entry);
        }
        while self.entries.len() as u32 > self.config.capacity {
            self.entries.remove(0);
            self.stats.evictions += 1;
        }
    }

    /// Non-mutating view of what `function` could acquire at `now` — the
    /// planner's input. Counts mirror [`WarmPool::acquire`] without
    /// consuming anything.
    pub fn snapshot(&self, function: &str, now: f64) -> PoolSnapshot {
        let mut warm = 0u32;
        let mut shared = 0u32;
        let pagurus = matches!(self.config.policy, KeepAlivePolicy::PagurusShare { .. });
        if !matches!(self.config.policy, KeepAlivePolicy::ColdAlways) {
            for e in &self.entries {
                let idle = now - e.idle_since;
                match e.state {
                    EntryState::Live => {
                        let window = self.keep_alive_window(&e.function);
                        if idle <= window && e.function == function {
                            warm += 1;
                        } else if pagurus && idle > window && idle <= 2.0 * window {
                            // Would demote to standby at acquire time.
                            shared += 1;
                        }
                    }
                    EntryState::Standby => {
                        if let KeepAlivePolicy::PagurusShare { idle_ttl } = self.config.policy {
                            if idle <= 2.0 * idle_ttl {
                                shared += 1;
                            }
                        }
                    }
                }
            }
        }
        PoolSnapshot {
            warm_available: warm,
            shared_available: shared,
            warm_start_secs: self.config.warm_start_secs,
            respecialize_secs: self.config.respecialize_secs,
            sched_secs_per_placement: self.config.sched_secs_per_placement,
        }
    }

    fn record_idle(&mut self, function: &str, idle_secs: f64) {
        if let KeepAlivePolicy::HybridHistogram { bin_secs, .. } = self.config.policy {
            self.histograms
                .entry(function.to_string())
                .or_default()
                .observe(idle_secs, bin_secs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(ttl: f64) -> WarmPool {
        WarmPool::new(
            WarmPoolConfig::cold().with_policy(KeepAlivePolicy::FixedKeepAlive { idle_ttl: ttl }),
        )
    }

    #[test]
    fn cold_always_grants_nothing() {
        let mut pool = WarmPool::new(WarmPoolConfig::cold());
        pool.check_in("sort", 100, 0.0);
        assert!(pool.is_empty(), "ColdAlways must not pool anything");
        assert!(pool.acquire("sort", 10, 1.0).is_empty());
        assert_eq!(pool.stats().warm_grants, 0);
        assert_eq!(pool.stats().cold_misses, 10);
    }

    #[test]
    fn fixed_ttl_grants_within_window_and_expires_after() {
        let mut pool = fixed(60.0);
        pool.check_in("sort", 5, 100.0);
        // Within the window: warm.
        let grants = pool.acquire("sort", 3, 150.0);
        assert_eq!(grants, vec![WARM_START_SECS; 3]);
        // Past the window: the remaining 2 expire.
        assert!(pool.acquire("sort", 2, 161.0).is_empty());
        assert_eq!(pool.stats().expirations, 2);
        assert_eq!(pool.stats().warm_grants, 3);
    }

    #[test]
    fn ttl_expiry_evicts_oldest_first_deterministically() {
        let mut pool = fixed(60.0);
        pool.check_in("a", 1, 0.0);
        pool.check_in("a", 1, 30.0);
        pool.check_in("a", 1, 50.0);
        // At t=70 only the t=0 entry has lapsed.
        pool.expire(70.0);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.stats().expirations, 1);
        // Oldest-first acquisition: the t=30 entry is granted before t=50.
        let mut clone = pool.clone();
        let g = clone.acquire("a", 1, 70.0);
        assert_eq!(g.len(), 1);
        assert_eq!(clone.len(), 1);
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut pool = WarmPool::new(
            WarmPoolConfig::cold()
                .with_capacity(3)
                .with_policy(KeepAlivePolicy::FixedKeepAlive { idle_ttl: 1e9 }),
        );
        pool.check_in("a", 2, 0.0);
        pool.check_in("b", 2, 10.0);
        assert_eq!(pool.len(), 3, "capacity bound");
        assert_eq!(pool.stats().evictions, 1);
        // The survivor set is the newest three: one "a" (t=0) was evicted.
        let a = pool.acquire("a", 2, 20.0);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn acquire_mixes_functions_correctly() {
        let mut pool = fixed(60.0);
        pool.check_in("a", 2, 0.0);
        pool.check_in("b", 2, 0.0);
        let a = pool.acquire("a", 4, 10.0);
        assert_eq!(a.len(), 2, "only a's own containers are warm for a");
        assert_eq!(pool.len(), 2, "b's containers stay pooled");
    }

    #[test]
    fn histogram_window_tracks_observed_idle_times() {
        let policy = KeepAlivePolicy::HybridHistogram {
            bin_secs: 10.0,
            keep_percentile: 0.99,
            max_ttl: 600.0,
        };
        let mut pool = WarmPool::new(WarmPoolConfig::cold().with_policy(policy));
        // No history yet: fall back to the full window.
        assert_eq!(pool.keep_alive_window("f"), 600.0);
        // Observe idle times of ~25 s (bin 2) by checking in and reusing.
        for k in 0..6u32 {
            let t = 100.0 * f64::from(k);
            pool.check_in("f", 1, t);
            let g = pool.acquire("f", 1, t + 25.0);
            assert_eq!(g.len(), 1, "reuse at 25 s idle must be warm");
        }
        // Six observations in bin [20,30): the 99th-percentile window is
        // that bin's upper edge.
        assert_eq!(pool.keep_alive_window("f"), 30.0);
        // And the window is enforced: a container idle 45 s > 30 s expires.
        pool.check_in("f", 1, 1000.0);
        assert!(pool.acquire("f", 1, 1045.0).is_empty());
    }

    #[test]
    fn histogram_windows_are_per_function() {
        let policy = KeepAlivePolicy::HybridHistogram {
            bin_secs: 10.0,
            keep_percentile: 0.99,
            max_ttl: 600.0,
        };
        let mut pool = WarmPool::new(WarmPoolConfig::cold().with_policy(policy));
        for k in 0..6u32 {
            let t = 1000.0 * f64::from(k);
            pool.check_in("short", 1, t);
            assert_eq!(pool.acquire("short", 1, t + 5.0).len(), 1);
            pool.check_in("long", 1, t);
            assert_eq!(pool.acquire("long", 1, t + 95.0).len(), 1);
        }
        assert_eq!(pool.keep_alive_window("short"), 10.0);
        assert_eq!(pool.keep_alive_window("long"), 100.0);
    }

    #[test]
    fn pagurus_respecializes_at_reduced_not_zero_cost() {
        let mut pool = WarmPool::new(
            WarmPoolConfig::cold().with_policy(KeepAlivePolicy::PagurusShare { idle_ttl: 60.0 }),
        );
        pool.check_in("donor", 3, 0.0);
        // t=90: own TTL lapsed → all three are standby donors.
        let grants = pool.acquire("borrower", 2, 90.0);
        assert_eq!(grants.len(), 2);
        for g in &grants {
            assert!(*g > WARM_START_SECS, "re-specialization is not free");
            assert!((g - WARM_START_SECS * RESPECIALIZE_FACTOR).abs() < 1e-12);
        }
        assert_eq!(pool.stats().shared_grants, 2);
        // t=200: past 2×TTL — the last donor is reclaimed.
        assert!(pool.acquire("borrower", 1, 200.0).is_empty());
    }

    #[test]
    fn pagurus_prefers_own_function_warm_starts() {
        let mut pool = WarmPool::new(
            WarmPoolConfig::cold().with_policy(KeepAlivePolicy::PagurusShare { idle_ttl: 60.0 }),
        );
        pool.check_in("other", 1, 0.0);
        pool.check_in("mine", 1, 50.0);
        // t=70: "mine" is live (idle 20 < 60), "other" is standby (idle 70).
        let grants = pool.acquire("mine", 2, 70.0);
        assert_eq!(grants.len(), 2);
        assert!((grants[0] - WARM_START_SECS).abs() < 1e-12, "own first");
        assert!(grants[1] > WARM_START_SECS, "then a donor");
    }

    #[test]
    fn pagurus_donor_selection_is_deterministic() {
        let build = || {
            let mut p = WarmPool::new(
                WarmPoolConfig::cold()
                    .with_policy(KeepAlivePolicy::PagurusShare { idle_ttl: 60.0 })
                    .with_seed(7),
            );
            p.check_in("a", 4, 0.0);
            p.check_in("b", 4, 1.0);
            p
        };
        let mut x = build();
        let mut y = build();
        for _ in 0..4 {
            assert_eq!(x.acquire("c", 1, 90.0), y.acquire("c", 1, 90.0));
            assert_eq!(x.len(), y.len());
        }
    }

    #[test]
    fn snapshot_matches_acquire_counts() {
        let mut pool = fixed(60.0);
        pool.check_in("f", 7, 0.0);
        let snap = pool.snapshot("f", 30.0);
        assert_eq!(snap.warm_available, 7);
        assert_eq!(snap.shared_available, 0);
        let grants = pool.acquire("f", 20, 30.0);
        assert_eq!(grants.len() as u32, snap.warm_available);
        // After expiry the snapshot goes to zero.
        pool.check_in("f", 2, 100.0);
        assert_eq!(pool.snapshot("f", 200.0).warm_available, 0);
    }

    #[test]
    fn pywren_prewarmed_pool_matches_legacy_fraction() {
        let pool = WarmPool::pywren_prewarmed("w", DEFAULT_POOL_CAPACITY);
        assert_eq!(pool.len() as u32, DEFAULT_POOL_CAPACITY);
        let snap = pool.snapshot("w", 0.0);
        assert_eq!(snap.warm_available, DEFAULT_POOL_CAPACITY);
        assert!((snap.warm_start_secs - 0.05).abs() < 1e-12);
    }
}
