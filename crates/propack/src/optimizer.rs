//! The optimal-packing-degree optimizer: Eqs. 3–7 of the paper.
//!
//! Three objectives, matching the paper's evaluation modes (§3):
//! * `ProPack (Service Time)` — Eq. 3, for deadline-bound workloads;
//! * `ProPack (Expense)` — Eq. 4, for budget-bound workloads;
//! * `ProPack` (joint, default) — Eqs. 5–7: minimize
//!   `W_S·ΔS(P) + W_E·ΔE(P)` where ΔS/ΔE are fractional regressions from
//!   each objective's own optimum and `W_S + W_E = 1` (default ½/½).

use crate::model::PackingModel;
use crate::ModelError;
use propack_platform::warmpool::PoolSnapshot;
use propack_stats::percentile::Percentile;
use serde::{Deserialize, Serialize};

/// What ProPack optimizes for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize service time only (Eq. 3) — "ProPack (Service Time)".
    ServiceTime,
    /// Minimize expense only (Eq. 4) — "ProPack (Expense)".
    Expense,
    /// Jointly minimize both (Eq. 7) with service-time weight `w_s`
    /// (expense weight is `1 − w_s`).
    Joint {
        /// Service-time weight `W_S ∈ [0, 1]`.
        w_s: f64,
    },
}

impl Default for Objective {
    /// The paper's default: equal weights (`W_S = W_E = 0.5`).
    fn default() -> Self {
        Objective::Joint { w_s: 0.5 }
    }
}

impl Objective {
    /// Check the objective's parameters. Eq. 7 defines the joint objective
    /// only for `W_S ∈ [0, 1]` (with `W_E = 1 − W_S`); out-of-range or NaN
    /// weights are rejected rather than silently clamped.
    pub fn validate(&self) -> Result<(), ModelError> {
        match *self {
            Objective::Joint { w_s } if !(0.0..=1.0).contains(&w_s) => {
                Err(ModelError::InvalidWeight { w_s })
            }
            _ => Ok(()),
        }
    }

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            Objective::ServiceTime => "ProPack (Service Time)".to_string(),
            Objective::Expense => "ProPack (Expense)".to_string(),
            Objective::Joint { w_s } if (*w_s - 0.5).abs() < 1e-12 => "ProPack".to_string(),
            Objective::Joint { w_s } => format!("ProPack (W_S={w_s:.2})"),
        }
    }
}

/// The optimizer's decision for one `(concurrency, objective)` query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackingPlan {
    /// The chosen packing degree `P_opt`.
    pub packing_degree: u32,
    /// Effective instances to spawn (`C_eff = ceil(C / P_opt)`).
    pub instances: u32,
    /// Original concurrency requested.
    pub concurrency: u32,
    /// Model-predicted service time at the plan.
    pub predicted_service_secs: f64,
    /// Model-predicted expense at the plan.
    pub predicted_expense_usd: f64,
    /// Figure of merit used for service time.
    pub metric: Percentile,
}

/// Eq. 3: the degree minimizing service time.
pub fn optimal_degree_service(model: &PackingModel, c: u32, metric: Percentile) -> u32 {
    argmin(model, |p| model.service_secs(c, p, metric))
}

/// Eq. 4: the degree minimizing expense.
pub fn optimal_degree_expense(model: &PackingModel, c: u32) -> u32 {
    argmin(model, |p| model.expense_usd(c, p))
}

/// Eqs. 5–7: the degree minimizing `W_S·ΔS + W_E·ΔE`.
///
/// `w_s` must lie in `[0, 1]`; [`plan`] enforces this via
/// [`Objective::validate`] before calling in.
pub fn optimal_degree_joint(model: &PackingModel, c: u32, metric: Percentile, w_s: f64) -> u32 {
    let w_e = 1.0 - w_s;
    let p_s = optimal_degree_service(model, c, metric);
    let p_e = optimal_degree_expense(model, c);
    let s_best = model.service_secs(c, p_s, metric);
    let e_best = model.expense_usd(c, p_e);
    argmin(model, |p| {
        // Eq. 5 / Eq. 6: fractional change from each objective's optimum.
        let ds = (model.service_secs(c, p, metric) - s_best) / s_best;
        let de = (model.expense_usd(c, p) - e_best) / e_best;
        w_s * ds + w_e * de
    })
}

/// Produce the full plan for an objective.
///
/// Fails with [`ModelError::InvalidWeight`] when a joint objective carries
/// a service-time weight outside `[0, 1]`.
pub fn plan(
    model: &PackingModel,
    c: u32,
    objective: Objective,
    metric: Percentile,
) -> Result<PackingPlan, ModelError> {
    objective.validate()?;
    let p = match objective {
        Objective::ServiceTime => optimal_degree_service(model, c, metric),
        Objective::Expense => optimal_degree_expense(model, c),
        Objective::Joint { w_s } => optimal_degree_joint(model, c, metric, w_s),
    };
    Ok(PackingPlan {
        packing_degree: p,
        instances: model.instances(c, p),
        concurrency: c,
        predicted_service_secs: model.service_secs(c, p, metric),
        predicted_expense_usd: model.expense_usd(c, p),
        metric,
    })
}

/// Warm-state-aware [`plan`]: the same objectives evaluated through the
/// pooled predictors, so the fixed-cost (scaling) term reflects what the
/// keep-alive pool can serve at plan time. A [`PoolSnapshot::cold`]
/// snapshot reproduces [`plan`] exactly — bit-identical degrees and
/// predictions — so cold-path planning is unchanged by construction.
pub fn plan_pooled(
    model: &PackingModel,
    c: u32,
    objective: Objective,
    metric: Percentile,
    pool: &PoolSnapshot,
) -> Result<PackingPlan, ModelError> {
    objective.validate()?;
    let service = |p: u32| model.service_secs_pooled(c, p, metric, pool);
    let expense = |p: u32| model.expense_usd_pooled(c, p, pool);
    let p = match objective {
        Objective::ServiceTime => argmin(model, &service),
        Objective::Expense => argmin(model, &expense),
        Objective::Joint { w_s } => {
            let w_e = 1.0 - w_s;
            let s_best = service(argmin(model, &service));
            let e_best = expense(argmin(model, &expense));
            argmin(model, |p| {
                let ds = (service(p) - s_best) / s_best;
                let de = (expense(p) - e_best) / e_best;
                w_s * ds + w_e * de
            })
        }
    };
    Ok(PackingPlan {
        packing_degree: p,
        instances: model.instances(c, p),
        concurrency: c,
        predicted_service_secs: service(p),
        predicted_expense_usd: expense(p),
        metric,
    })
}

/// Argmin over the feasible degrees `1..=p_max`; ties break toward the
/// smaller degree (less interference risk for equal predicted value).
fn argmin<F: Fn(u32) -> f64>(model: &PackingModel, f: F) -> u32 {
    let mut best = (1u32, f64::INFINITY);
    for p in 1..=model.p_max.max(1) {
        let v = f(p);
        if v < best.1 {
            best = (p, v);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::InterferenceModel;
    use crate::model::CostFactors;
    use crate::scaling::ScalingModel;
    use propack_platform::profile::PlatformProfile;
    use propack_platform::WorkProfile;

    fn model() -> PackingModel {
        PackingModel {
            interference: InterferenceModel {
                base: 100.0 / (0.05f64).exp(),
                rate: 0.05,
                mem_gb: 0.25,
                rmse: 0.0,
            },
            scaling: ScalingModel {
                beta1: 3.0e-5,
                beta2: 0.045,
                beta3: 2.0,
                r_squared: 1.0,
            },
            cost: CostFactors::derive(
                &PlatformProfile::aws_lambda().prices,
                &WorkProfile::synthetic("w", 0.25, 100.0),
                10.0,
            ),
            p_max: 40,
        }
    }

    #[test]
    fn low_concurrency_prefers_low_degrees() {
        // With little scaling pressure, packing mostly hurts.
        let m = model();
        let p = optimal_degree_service(&m, 50, Percentile::Total);
        assert!(p <= 3, "degree {p} at C = 50");
    }

    #[test]
    fn degree_grows_with_concurrency() {
        // Fig. 8 observation (1): higher concurrency → higher oracle degree.
        let m = model();
        let degrees: Vec<u32> = [500u32, 1000, 2000, 5000]
            .iter()
            .map(|&c| optimal_degree_joint(&m, c, Percentile::Total, 0.5))
            .collect();
        for w in degrees.windows(2) {
            assert!(w[1] >= w[0], "degrees not monotone: {degrees:?}");
        }
        assert!(
            degrees[3] > degrees[0],
            "no growth across 10× concurrency: {degrees:?}"
        );
    }

    #[test]
    fn expense_objective_packs_more_than_service_objective() {
        // Fig. 15: the Oracle degree increases when expense minimization is
        // given higher importance, because expense scales multiplicatively
        // with C_eff while service scales additively.
        let m = model();
        let c = 2000;
        let p_s = optimal_degree_service(&m, c, Percentile::Total);
        let p_e = optimal_degree_expense(&m, c);
        let p_joint = optimal_degree_joint(&m, c, Percentile::Total, 0.5);
        assert!(
            p_e >= p_joint && p_joint >= p_s,
            "{p_s} / {p_joint} / {p_e}"
        );
        assert!(p_e > p_s);
    }

    #[test]
    fn expense_optimum_matches_closed_form() {
        // For the compute-dominated cost e^{kP}·C/P, the continuous
        // optimum is P = 1/k = 20; the discrete argmin must be adjacent.
        let m = model();
        let p_e = optimal_degree_expense(&m, 5000);
        assert!((19..=21).contains(&p_e), "p_e = {p_e}");
    }

    #[test]
    fn joint_weights_interpolate_between_extremes() {
        let m = model();
        let c = 3000;
        let p_service_only = optimal_degree_joint(&m, c, Percentile::Total, 1.0);
        let p_expense_only = optimal_degree_joint(&m, c, Percentile::Total, 0.0);
        assert_eq!(
            p_service_only,
            optimal_degree_service(&m, c, Percentile::Total)
        );
        assert_eq!(p_expense_only, optimal_degree_expense(&m, c));
        for w in [0.25, 0.5, 0.75] {
            let p = optimal_degree_joint(&m, c, Percentile::Total, w);
            assert!(p >= p_service_only.min(p_expense_only));
            assert!(p <= p_service_only.max(p_expense_only));
        }
    }

    #[test]
    fn plan_respects_objective() {
        let m = model();
        let plan_s = plan(&m, 2000, Objective::ServiceTime, Percentile::Total).unwrap();
        let plan_e = plan(&m, 2000, Objective::Expense, Percentile::Total).unwrap();
        assert!(plan_s.predicted_service_secs <= plan_e.predicted_service_secs);
        assert!(plan_e.predicted_expense_usd <= plan_s.predicted_expense_usd);
        assert_eq!(plan_s.instances, m.instances(2000, plan_s.packing_degree));
    }

    #[test]
    fn degree_never_exceeds_p_max() {
        let mut m = model();
        m.p_max = 7;
        for c in [100, 1000, 10_000] {
            let p = optimal_degree_expense(&m, c);
            assert!(p <= 7);
        }
    }

    #[test]
    fn out_of_range_joint_weight_rejected_not_clamped() {
        let m = model();
        for w_s in [-0.1, 1.5, f64::NAN] {
            match plan(&m, 2000, Objective::Joint { w_s }, Percentile::Total) {
                Err(ModelError::InvalidWeight { w_s: got }) => {
                    assert!(got.is_nan() == w_s.is_nan() && (got.is_nan() || got == w_s));
                }
                other => panic!("w_s = {w_s} must be rejected, got {other:?}"),
            }
        }
        // The boundary weights are valid, not edge-case rejections.
        assert!(plan(&m, 2000, Objective::Joint { w_s: 0.0 }, Percentile::Total).is_ok());
        assert!(plan(&m, 2000, Objective::Joint { w_s: 1.0 }, Percentile::Total).is_ok());
    }

    #[test]
    fn cold_snapshot_plans_are_bit_identical_to_unpooled() {
        let m = model();
        let cold = PoolSnapshot::cold();
        for c in [100u32, 1000, 5000] {
            for obj in [
                Objective::ServiceTime,
                Objective::Expense,
                Objective::Joint { w_s: 0.5 },
            ] {
                let a = plan(&m, c, obj, Percentile::Total).unwrap();
                let b = plan_pooled(&m, c, obj, Percentile::Total, &cold).unwrap();
                assert_eq!(a, b, "c={c} {obj:?}");
            }
        }
    }

    #[test]
    fn warm_pool_lowers_the_service_optimal_degree() {
        // Packing exists to dodge the scaling penalty; when a pool absorbs
        // most of it, the planner should back off toward lower degrees
        // (less interference) — the realized optimum shifts with pool state.
        let m = model();
        let c = 5000;
        let cold_p = plan_pooled(
            &m,
            c,
            Objective::ServiceTime,
            Percentile::Total,
            &PoolSnapshot::cold(),
        )
        .unwrap()
        .packing_degree;
        let warm = PoolSnapshot {
            warm_available: 5000,
            shared_available: 0,
            ..PoolSnapshot::cold()
        };
        let warm_plan =
            plan_pooled(&m, c, Objective::ServiceTime, Percentile::Total, &warm).unwrap();
        assert!(
            warm_plan.packing_degree < cold_p,
            "warm pool must relax packing: {cold_p} → {}",
            warm_plan.packing_degree
        );
        assert!(
            warm_plan.predicted_service_secs
                < plan(&m, c, Objective::ServiceTime, Percentile::Total)
                    .unwrap()
                    .predicted_service_secs
        );
    }

    #[test]
    fn objective_labels() {
        assert_eq!(Objective::ServiceTime.label(), "ProPack (Service Time)");
        assert_eq!(Objective::Expense.label(), "ProPack (Expense)");
        assert_eq!(Objective::default().label(), "ProPack");
        assert_eq!(Objective::Joint { w_s: 0.65 }.label(), "ProPack (W_S=0.65)");
    }
}
