//! Expense accounting.
//!
//! §2.3 of the paper: users are billed for *execution time × memory* per
//! function instance, plus request fees and storage — never for queueing or
//! scaling delay. Instances are configured at the platform's maximum memory
//! (§3: "We use Lambdas with the maximum memory size (10 GB) to achieve a
//! considerable maximum packing degree"), so the per-second rate `R` is
//! constant across packing degrees, exactly as the paper's Eq. 4 assumes.
//!
//! Google and Azure additionally charge per GB of network transfer between
//! function instances; traffic between functions packed into the *same*
//! instance stays on localhost and is free — the mechanism behind Fig. 21's
//! larger expense savings on those platforms.

use crate::profile::PriceSheet;
use crate::work::WorkProfile;
use serde::{Deserialize, Serialize};

/// Fraction of a packed function's inter-function traffic that still leaves
/// the instance (coordination with remote peers / storage endpoints); the
/// rest is served locally by co-packed functions.
pub const PACKED_EGRESS_RESIDUAL: f64 = 0.1;

/// Fraction of the storage bill a same-function warm start avoids: a kept-
/// alive container still holds the function's dependencies, so it skips the
/// staging reads a cold start performs against common storage. This is the
/// same mechanism (and the same calibration) as the Pywren baseline's
/// common-storage optimization — `propack_baselines::Pywren` sources its
/// `storage_discount` default from this constant.
pub const WARM_REUSE_STORAGE_DISCOUNT: f64 = 0.4;

/// Storage credit earned when `warm_instances` of `total_instances` in a
/// burst were served from same-function warm containers: the warm share of
/// the storage bill, discounted by [`WARM_REUSE_STORAGE_DISCOUNT`]. Compute
/// seconds are unaffected — provisioning time was never billed (§2.3), so
/// the warm/cold split shows up on the storage line only.
///
/// **Saturating**: `warm_instances` is clamped to `total_instances`, so an
/// over-count can never credit more than the full-warm storage share, and
/// `total_instances == 0` earns nothing. An over-count is also a caller
/// bug — a pool cannot grant more warm containers than the burst admitted
/// (`request.rs` derives both arguments from the same round-0 burst, where
/// the invariant holds by construction) — so debug builds trap it while
/// release builds keep the documented clamp.
pub fn warm_reuse_credit(expense: &Expense, warm_instances: u32, total_instances: u32) -> f64 {
    if total_instances == 0 {
        return 0.0;
    }
    debug_assert!(
        warm_instances <= total_instances,
        "warm_reuse_credit: {warm_instances} warm grants exceed {total_instances} admitted \
         instances; the credit saturates at the full-warm share"
    );
    let fraction = f64::from(warm_instances.min(total_instances)) / f64::from(total_instances);
    expense.storage_usd * WARM_REUSE_STORAGE_DISCOUNT * fraction
}

/// An itemized bill for one burst.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Expense {
    /// GB·second compute charges across all instances.
    pub compute_usd: f64,
    /// Per-invocation request fees (one per *instance*; packed functions
    /// share a single invocation).
    pub request_usd: f64,
    /// Object-storage fees (requests + capacity), per *function* — packing
    /// does not reduce how much data the application reads/writes.
    pub storage_usd: f64,
    /// Inter-function network fees (zero on AWS).
    pub network_usd: f64,
}

impl Expense {
    /// Total bill.
    pub fn total_usd(&self) -> f64 {
        self.compute_usd + self.request_usd + self.storage_usd + self.network_usd
    }
}

/// Compute the bill for a burst.
///
/// * `billed_mem_gb` — the configured instance memory (the platform max).
/// * `instance_exec_secs` — per-instance execution durations (billed time).
/// * `packing_degree` — functions per instance.
pub fn bill_burst(
    prices: &PriceSheet,
    work: &WorkProfile,
    billed_mem_gb: f64,
    instance_exec_secs: &[f64],
    packing_degree: u32,
) -> Expense {
    let instances = instance_exec_secs.len() as f64;
    let functions = instances * packing_degree as f64;
    let billed_secs: f64 = instance_exec_secs.iter().sum();

    let compute_usd = billed_secs * billed_mem_gb * prices.usd_per_gb_sec;
    let request_usd = instances * prices.usd_per_request;
    let storage_usd = functions
        * (work.storage_requests as f64 * prices.usd_per_storage_request
            + work.storage_gb * prices.usd_per_storage_gb);

    // Per-function egress; co-packed functions keep most of it local.
    let egress_per_fn = if packing_degree > 1 {
        work.network_gb * PACKED_EGRESS_RESIDUAL
    } else {
        work.network_gb
    };
    let network_usd = functions * egress_per_fn * prices.usd_per_network_gb;

    Expense {
        compute_usd,
        request_usd,
        storage_usd,
        network_usd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PlatformProfile;

    fn work() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 100.0)
            .with_storage(0.01, 4)
            .with_network(0.02)
    }

    #[test]
    fn compute_charge_is_gb_seconds() {
        let prices = PlatformProfile::aws_lambda().prices;
        let e = bill_burst(&prices, &work(), 10.0, &[100.0, 100.0], 1);
        let want = 200.0 * 10.0 * prices.usd_per_gb_sec;
        assert!((e.compute_usd - want).abs() < 1e-12);
    }

    #[test]
    fn scaling_delay_never_billed() {
        // The bill depends only on execution seconds, not on when instances
        // started — two identical exec profiles with wildly different
        // scaling behaviour cost the same.
        let prices = PlatformProfile::aws_lambda().prices;
        let a = bill_burst(&prices, &work(), 10.0, &[50.0; 100], 1);
        let b = bill_burst(&prices, &work(), 10.0, &[50.0; 100], 1);
        assert_eq!(a, b);
    }

    #[test]
    fn request_fee_counts_instances_not_functions() {
        let prices = PlatformProfile::aws_lambda().prices;
        let unpacked = bill_burst(&prices, &work(), 10.0, &[100.0; 40], 1);
        let packed = bill_burst(&prices, &work(), 10.0, &[130.0; 4], 10);
        assert!((unpacked.request_usd - 40.0 * prices.usd_per_request).abs() < 1e-15);
        assert!((packed.request_usd - 4.0 * prices.usd_per_request).abs() < 1e-15);
    }

    #[test]
    fn storage_fee_counts_functions() {
        // 4 instances × 10 functions do the same S3 traffic as 40 × 1.
        let prices = PlatformProfile::aws_lambda().prices;
        let unpacked = bill_burst(&prices, &work(), 10.0, &[100.0; 40], 1);
        let packed = bill_burst(&prices, &work(), 10.0, &[130.0; 4], 10);
        assert!((unpacked.storage_usd - packed.storage_usd).abs() < 1e-12);
    }

    #[test]
    fn packing_slashes_network_fee_on_google() {
        let prices = PlatformProfile::google_cloud_functions().prices;
        let unpacked = bill_burst(&prices, &work(), 8.0, &[100.0; 40], 1);
        let packed = bill_burst(&prices, &work(), 8.0, &[130.0; 4], 10);
        assert!(packed.network_usd < unpacked.network_usd * 0.15);
        assert!(unpacked.network_usd > 0.0);
    }

    #[test]
    fn aws_network_fee_is_zero() {
        let prices = PlatformProfile::aws_lambda().prices;
        let e = bill_burst(&prices, &work(), 10.0, &[100.0; 10], 1);
        assert_eq!(e.network_usd, 0.0);
    }

    #[test]
    fn warm_reuse_credit_scales_with_warm_share() {
        let prices = PlatformProfile::aws_lambda().prices;
        let e = bill_burst(&prices, &work(), 10.0, &[100.0; 40], 1);
        assert_eq!(warm_reuse_credit(&e, 0, 40), 0.0);
        let half = warm_reuse_credit(&e, 20, 40);
        let full = warm_reuse_credit(&e, 40, 40);
        assert!(half > 0.0);
        assert!((full - 2.0 * half).abs() < 1e-15);
        assert!((full - e.storage_usd * WARM_REUSE_STORAGE_DISCOUNT).abs() < 1e-15);
        // Degenerate inputs never over-credit or divide by zero.
        assert_eq!(warm_reuse_credit(&e, 10, 0), 0.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "warm grants exceed"))]
    fn warm_overcount_traps_in_debug_and_saturates_in_release() {
        // warm > total is a caller bug: debug builds trap it loudly, while
        // release builds keep the documented saturating clamp (never more
        // than the full-warm credit).
        let prices = PlatformProfile::aws_lambda().prices;
        let e = bill_burst(&prices, &work(), 10.0, &[100.0; 40], 1);
        let full = warm_reuse_credit(&e, 40, 40);
        let over = warm_reuse_credit(&e, 100, 40);
        assert!((over - full).abs() < 1e-15);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let prices = PlatformProfile::azure_functions().prices;
        let e = bill_burst(&prices, &work(), 14.0, &[80.0; 7], 3);
        let total = e.compute_usd + e.request_usd + e.storage_usd + e.network_usd;
        assert!((e.total_usd() - total).abs() < 1e-15);
        assert!(e.total_usd() > 0.0);
    }
}
