//! simlint fixture: invokes panic-wrapper macros from a panic-free crate
//! (2 violations). The v1 token scan sees `die_fast ! (…)` as an unknown
//! macro and reports nothing; the AST pass resolves it against the
//! workspace `macro_rules!` table from `panic_wrapper.rs`.

pub fn risky(x: Option<u32>) -> u32 {
    if x.is_none() {
        die_fast!("missing input");
    }
    die_faster!();
    let bumped = harmless!(x.unwrap_or(0));
    bumped
}

#[cfg(test)]
mod tests {
    #[test]
    fn wrappers_fine_in_tests() {
        die_fast!("test code may panic");
    }
}
