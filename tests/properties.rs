//! Cross-crate property-based tests (proptest): invariants that must hold
//! for *any* burst specification, not just the calibrated benchmarks.

use propack_repro::platform::profile::PlatformProfile;
use propack_repro::platform::PlatformBuilder;
use propack_repro::platform::{BurstSpec, CloudPlatform, ServerlessPlatform, WorkProfile};
use propack_repro::propack::interference::{InterferenceModel, InterferenceSample};
use propack_repro::propack::model::{CostFactors, PackingModel};
use propack_repro::propack::optimizer::{plan, Objective};
use propack_repro::propack::scaling::{ScalingModel, ScalingSample};
use propack_repro::stats::percentile::Percentile;
use proptest::prelude::*;

fn aws() -> CloudPlatform {
    PlatformBuilder::aws().build()
}

/// Strategy: a feasible (work, degree) pair under the AWS 10 GB / 900 s
/// caps.
fn feasible_spec() -> impl Strategy<Value = (WorkProfile, u32, u32, u64)> {
    (
        0.1f64..1.0,   // mem_gb
        5.0f64..120.0, // base exec
        0.02f64..0.3,  // contention per GB
        1u32..=400,    // instances
        1u32..=10,     // packing degree candidate
        any::<u64>(),  // seed
    )
        .prop_map(|(mem, base, cont, inst, deg, seed)| {
            let work = WorkProfile::synthetic("prop", mem, base).with_contention(cont);
            // Clamp the degree to the memory cap so the burst is valid.
            let deg = deg.min(work.max_packing_degree(10.0));
            (work, inst, deg, seed)
        })
        .prop_filter("must fit execution cap", |(work, _, deg, _)| {
            let p = PlatformProfile::aws_lambda();
            propack_repro::platform::instance::packed_exec_secs(&p.instance, work, *deg) * 1.03
                < p.instance.max_exec_secs
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lifecycle timestamps are ordered for every instance of any burst.
    #[test]
    fn lifecycle_is_ordered((work, inst, deg, seed) in feasible_spec()) {
        let report = aws().run_burst(&BurstSpec::new(work, inst, deg).with_seed(seed)).unwrap();
        prop_assert_eq!(report.instances.len(), inst as usize);
        for r in &report.instances {
            prop_assert!(r.scheduled_at >= 0.0);
            prop_assert!(r.built_at >= r.scheduled_at);
            prop_assert!(r.shipped_at >= r.built_at);
            prop_assert!(r.started_at >= r.shipped_at);
            prop_assert!(r.finished_at > r.started_at);
        }
    }

    /// The same seed reproduces the identical report; different seeds
    /// differ somewhere (with overwhelming probability).
    #[test]
    fn burst_determinism((work, inst, deg, seed) in feasible_spec()) {
        let p = aws();
        let spec = BurstSpec::new(work, inst, deg).with_seed(seed);
        let a = p.run_burst(&spec).unwrap();
        let b = p.run_burst(&spec).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Billing never charges for queueing: the bill equals the billing
    /// formula applied to execution durations alone.
    #[test]
    fn bill_matches_exec_durations((work, inst, deg, seed) in feasible_spec()) {
        let p = aws();
        let report = p.run_burst(&BurstSpec::new(work.clone(), inst, deg).with_seed(seed)).unwrap();
        let exec: Vec<f64> = report.instances.iter().map(|r| r.exec_secs()).collect();
        let expect = propack_repro::platform::billing::bill_burst(
            &p.prices(), &work, p.limits().mem_gb, &exec, deg,
        );
        prop_assert_eq!(report.expense, expect);
    }

    /// Service-time figures of merit are always ordered
    /// total ≥ tail ≥ median, and scaling never exceeds total service.
    #[test]
    fn metric_ordering((work, inst, deg, seed) in feasible_spec()) {
        let report = aws().run_burst(&BurstSpec::new(work, inst, deg).with_seed(seed)).unwrap();
        let total = report.service_time(Percentile::Total);
        let tail = report.service_time(Percentile::Tail95);
        let median = report.service_time(Percentile::Median);
        prop_assert!(total >= tail);
        prop_assert!(tail >= median);
        prop_assert!(report.scaling_time() <= total);
    }

    /// A packed plan always covers the requested concurrency:
    /// instances × degree ≥ C, and instances = ceil(C / degree).
    #[test]
    fn packed_burst_covers_concurrency(c in 1u32..20_000, p in 1u32..64) {
        let spec = BurstSpec::packed(WorkProfile::synthetic("w", 0.1, 1.0), c, p);
        prop_assert!(spec.total_functions() >= c as u64);
        prop_assert!(((spec.instances as u64 - 1) * p as u64) < (c as u64));
    }

    /// The optimizer never exceeds the feasible degree range, and its
    /// chosen degree is at least as good as both endpoints under its own
    /// objective.
    #[test]
    fn optimizer_degree_feasible_and_locally_optimal(
        rate in 0.01f64..0.2,
        base in 10.0f64..200.0,
        b1 in 1e-6f64..1e-4,
        b2 in 0.01f64..0.3,
        c in 100u32..10_000,
        p_max in 2u32..40,
    ) {
        let model = PackingModel {
            interference: InterferenceModel { base, rate, mem_gb: 0.25, rmse: 0.0 },
            scaling: ScalingModel { beta1: b1, beta2: b2, beta3: 0.0, r_squared: 1.0 },
            cost: CostFactors::derive(
                &PlatformProfile::aws_lambda().prices,
                &WorkProfile::synthetic("w", 0.25, base),
                10.0,
            ),
            p_max,
        };
        for objective in [Objective::ServiceTime, Objective::Expense, Objective::default()] {
            let chosen = plan(&model, c, objective, Percentile::Total).expect("valid objective");
            prop_assert!(chosen.packing_degree >= 1);
            prop_assert!(chosen.packing_degree <= p_max);
        }
        // Single-objective optimality vs every feasible degree.
        let best_s = plan(&model, c, Objective::ServiceTime, Percentile::Total).expect("service");
        let best_e = plan(&model, c, Objective::Expense, Percentile::Total).expect("expense");
        for p in 1..=p_max {
            prop_assert!(
                best_s.predicted_service_secs <= model.service_secs(c, p, Percentile::Total) + 1e-9
            );
            prop_assert!(best_e.predicted_expense_usd <= model.expense_usd(c, p) + 1e-9);
        }
    }

    /// Fitting Eq. 1 on noise-free samples generated by the model itself
    /// recovers the parameters (round-trip through profiling arithmetic).
    #[test]
    fn interference_fit_round_trips(
        base in 5.0f64..500.0,
        rate in 0.005f64..0.3,
        mem in 0.1f64..2.0,
    ) {
        let truth = InterferenceModel { base, rate, mem_gb: mem, rmse: 0.0 };
        let samples: Vec<InterferenceSample> = (1..=9).step_by(2)
            .map(|p| InterferenceSample { packing_degree: p, exec_secs: truth.exec_secs(p) })
            .collect();
        let fitted = InterferenceModel::fit(&samples, mem).unwrap();
        prop_assert!((fitted.rate - rate).abs() < 1e-6);
        prop_assert!((fitted.base - base).abs() / base < 1e-6);
    }

    /// Fitting Eq. 2 on noise-free samples round-trips the βs.
    #[test]
    fn scaling_fit_round_trips(
        b1 in 1e-6f64..1e-3,
        b2 in 0.001f64..0.5,
        b3 in 0.0f64..20.0,
    ) {
        let samples: Vec<ScalingSample> = (1..=8)
            .map(|i| {
                let c = (i * 400) as f64;
                ScalingSample {
                    concurrency: (i * 400) as u32,
                    scaling_secs: b1 * c * c + b2 * c - b3,
                }
            })
            .collect();
        let fitted = ScalingModel::fit(&samples).unwrap();
        prop_assert!((fitted.beta1 - b1).abs() / b1 < 1e-5);
        prop_assert!((fitted.beta2 - b2).abs() / b2 < 1e-3);
    }
}
