//! Burst specifications: one concurrent invocation request.
//!
//! A burst asks the platform to start `instances` function instances at
//! t = 0, each packing `packing_degree` functions (threads) of the given
//! workload — the paper's §3 setup where AWS Step Functions fans out `C`
//! concurrent invocations. Under ProPack, `instances = C_eff = C / P` and
//! `packing_degree = P`; in the baseline, `instances = C` and
//! `packing_degree = 1`.

use crate::work::WorkProfile;
use propack_simcore::{FaultSpec, RetryPolicy};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A request to spawn `instances` concurrent function instances.
///
/// The workload is held behind an [`Arc`] so that cloning a spec — which the
/// platform, the sweep engine, and the profiler all do per burst — never
/// deep-copies the profile's histogram vectors. Serialization goes through
/// the [`BurstSpecWire`] mirror so the wire format is unchanged (the profile
/// is inlined, not reference-counted, on disk).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(from = "BurstSpecWire", into = "BurstSpecWire")]
pub struct BurstSpec {
    /// The function being executed (same code in every instance, §1).
    pub workload: Arc<WorkProfile>,
    /// Number of concurrent function instances (`C_eff`).
    pub instances: u32,
    /// Functions packed per instance (`P`); 1 = traditional spawning.
    pub packing_degree: u32,
    /// RNG seed; the same seed reproduces the identical timeline.
    pub seed: u64,
    /// Fraction of instances served from warm containers (skip build +
    /// shipping). The Pywren baseline drives this; plain bursts use 0.0.
    pub warm_fraction: f64,
    /// Per-instance warm-start latencies granted by a
    /// [`crate::warmpool::WarmPool`]: instance `i < warm_starts.len()` is
    /// warm and starts after `warm_starts[i]` seconds. Empty (the default)
    /// falls back to `warm_fraction` with the legacy constant latency, so
    /// pool-less specs replay bit-identically.
    #[serde(default)]
    pub warm_starts: Vec<f64>,
    /// Runtime fault processes injected into this burst (default: none,
    /// which replays the historical fault-free timeline exactly).
    #[serde(default)]
    pub faults: FaultSpec,
    /// Retry/backoff policy for faulted instances.
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Opt-in fluid approximation: bursts of at least this many instances
    /// replace the event-driven control plane with its closed-form
    /// mean-field wave (control-plane jitter set to its mean of 1; fault
    /// and execution draws stay exact), trading a bounded relative error
    /// on timestamps — at most the profile's control jitter amplitude —
    /// for an event-free O(instances) run. `None` (the default) never
    /// approximates: every spec that doesn't ask for fluid execution
    /// replays its exact timeline.
    #[serde(default)]
    pub fluid_min_cohort: Option<u32>,
}

/// Serde mirror of [`BurstSpec`] with the workload stored by value, keeping
/// the on-disk format identical to the pre-`Arc` struct.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BurstSpecWire {
    workload: WorkProfile,
    instances: u32,
    packing_degree: u32,
    seed: u64,
    warm_fraction: f64,
    #[serde(default)]
    warm_starts: Vec<f64>,
    #[serde(default)]
    faults: FaultSpec,
    #[serde(default)]
    retry: RetryPolicy,
    #[serde(default)]
    fluid_min_cohort: Option<u32>,
}

impl From<BurstSpecWire> for BurstSpec {
    fn from(w: BurstSpecWire) -> Self {
        BurstSpec {
            workload: Arc::new(w.workload),
            instances: w.instances,
            packing_degree: w.packing_degree,
            seed: w.seed,
            warm_fraction: w.warm_fraction,
            warm_starts: w.warm_starts,
            faults: w.faults,
            retry: w.retry,
            fluid_min_cohort: w.fluid_min_cohort,
        }
    }
}

impl From<BurstSpec> for BurstSpecWire {
    fn from(s: BurstSpec) -> Self {
        BurstSpecWire {
            workload: WorkProfile::clone(&s.workload),
            instances: s.instances,
            packing_degree: s.packing_degree,
            seed: s.seed,
            warm_fraction: s.warm_fraction,
            warm_starts: s.warm_starts,
            faults: s.faults,
            retry: s.retry,
            fluid_min_cohort: s.fluid_min_cohort,
        }
    }
}

impl BurstSpec {
    /// A cold burst with default seed 0. Accepts either an owned
    /// [`WorkProfile`] or an already-shared `Arc<WorkProfile>`; pass the
    /// `Arc` when issuing many bursts of the same workload to avoid
    /// deep-copying the profile per burst.
    pub fn new(workload: impl Into<Arc<WorkProfile>>, instances: u32, packing_degree: u32) -> Self {
        BurstSpec {
            workload: workload.into(),
            instances,
            packing_degree,
            seed: 0,
            warm_fraction: 0.0,
            warm_starts: Vec::new(),
            faults: FaultSpec::none(),
            retry: RetryPolicy::default(),
            fluid_min_cohort: None,
        }
    }

    /// Builder-style seed setter.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style warm-fraction setter (clamped to `[0, 1]`).
    pub fn with_warm_fraction(mut self, f: f64) -> Self {
        self.warm_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Builder-style warm-grant setter: the first `grants.len()` instances
    /// start warm after the granted per-instance latencies (a
    /// [`crate::warmpool::WarmPool::acquire`] result). Also sets
    /// `warm_fraction` to the covered fraction so reports and admission
    /// logic agree with the grant list.
    pub fn with_warm_starts(mut self, grants: Vec<f64>) -> Self {
        let covered = (grants.len() as f64 / self.instances.max(1) as f64).clamp(0.0, 1.0);
        self.warm_fraction = covered;
        self.warm_starts = grants;
        self
    }

    /// Builder-style fault-injection setter.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Builder-style retry-policy setter.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder-style fluid opt-in: approximate bursts of at least
    /// `min_cohort` instances with the closed-form mean-field control
    /// plane (see the field docs for the error bound). Smaller bursts —
    /// and every traced run — keep the exact event path.
    pub fn with_fluid(mut self, min_cohort: u32) -> Self {
        self.fluid_min_cohort = Some(min_cohort.max(1));
        self
    }

    /// Total functions executed by this burst (`instances × packing_degree`).
    pub fn total_functions(&self) -> u64 {
        self.instances as u64 * self.packing_degree as u64
    }

    /// Build the ProPack-shaped burst for original concurrency `c` at
    /// packing degree `p`: `C_eff = ceil(C / P)` instances so that every
    /// function is covered (the last instance may be partially filled).
    pub fn packed(workload: impl Into<Arc<WorkProfile>>, c: u32, p: u32) -> Self {
        let instances = c.div_ceil(p.max(1));
        BurstSpec::new(workload, instances, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 100.0)
    }

    #[test]
    fn packed_covers_all_functions() {
        let b = BurstSpec::packed(w(), 1000, 7);
        assert_eq!(b.instances, 143);
        assert!(b.total_functions() >= 1000);
        // And at degree 1 it's the identity.
        let b1 = BurstSpec::packed(w(), 1000, 1);
        assert_eq!(b1.instances, 1000);
    }

    #[test]
    fn bursts_default_fault_free() {
        let b = BurstSpec::new(w(), 10, 1);
        assert!(b.faults.is_none());
        let faulted = b
            .with_faults(FaultSpec::none().with_crash_rate(0.01))
            .with_retry(RetryPolicy::no_retries());
        assert!(!faulted.faults.is_none());
        assert_eq!(faulted.retry.max_attempts, 1);
    }

    #[test]
    fn warm_fraction_clamped() {
        assert_eq!(
            BurstSpec::new(w(), 1, 1)
                .with_warm_fraction(1.7)
                .warm_fraction,
            1.0
        );
        assert_eq!(
            BurstSpec::new(w(), 1, 1)
                .with_warm_fraction(-0.2)
                .warm_fraction,
            0.0
        );
    }
}
