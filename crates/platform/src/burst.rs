//! Burst specifications: one concurrent invocation request.
//!
//! A burst asks the platform to start `instances` function instances at
//! t = 0, each packing `packing_degree` functions (threads) of the given
//! workload — the paper's §3 setup where AWS Step Functions fans out `C`
//! concurrent invocations. Under ProPack, `instances = C_eff = C / P` and
//! `packing_degree = P`; in the baseline, `instances = C` and
//! `packing_degree = 1`.

use crate::work::WorkProfile;
use propack_simcore::{FaultSpec, RetryPolicy};
use serde::{Deserialize, Serialize};

/// A request to spawn `instances` concurrent function instances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstSpec {
    /// The function being executed (same code in every instance, §1).
    pub workload: WorkProfile,
    /// Number of concurrent function instances (`C_eff`).
    pub instances: u32,
    /// Functions packed per instance (`P`); 1 = traditional spawning.
    pub packing_degree: u32,
    /// RNG seed; the same seed reproduces the identical timeline.
    pub seed: u64,
    /// Fraction of instances served from warm containers (skip build +
    /// shipping). The Pywren baseline drives this; plain bursts use 0.0.
    pub warm_fraction: f64,
    /// Runtime fault processes injected into this burst (default: none,
    /// which replays the historical fault-free timeline exactly).
    #[serde(default)]
    pub faults: FaultSpec,
    /// Retry/backoff policy for faulted instances.
    #[serde(default)]
    pub retry: RetryPolicy,
}

impl BurstSpec {
    /// A cold burst with default seed 0.
    pub fn new(workload: WorkProfile, instances: u32, packing_degree: u32) -> Self {
        BurstSpec {
            workload,
            instances,
            packing_degree,
            seed: 0,
            warm_fraction: 0.0,
            faults: FaultSpec::none(),
            retry: RetryPolicy::default(),
        }
    }

    /// Builder-style seed setter.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style warm-fraction setter (clamped to `[0, 1]`).
    pub fn with_warm_fraction(mut self, f: f64) -> Self {
        self.warm_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Builder-style fault-injection setter.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Builder-style retry-policy setter.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Total functions executed by this burst (`instances × packing_degree`).
    pub fn total_functions(&self) -> u64 {
        self.instances as u64 * self.packing_degree as u64
    }

    /// Build the ProPack-shaped burst for original concurrency `c` at
    /// packing degree `p`: `C_eff = ceil(C / P)` instances so that every
    /// function is covered (the last instance may be partially filled).
    pub fn packed(workload: WorkProfile, c: u32, p: u32) -> Self {
        let instances = c.div_ceil(p.max(1));
        BurstSpec::new(workload, instances, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> WorkProfile {
        WorkProfile::synthetic("w", 0.25, 100.0)
    }

    #[test]
    fn packed_covers_all_functions() {
        let b = BurstSpec::packed(w(), 1000, 7);
        assert_eq!(b.instances, 143);
        assert!(b.total_functions() >= 1000);
        // And at degree 1 it's the identity.
        let b1 = BurstSpec::packed(w(), 1000, 1);
        assert_eq!(b1.instances, 1000);
    }

    #[test]
    fn bursts_default_fault_free() {
        let b = BurstSpec::new(w(), 10, 1);
        assert!(b.faults.is_none());
        let faulted = b
            .with_faults(FaultSpec::none().with_crash_rate(0.01))
            .with_retry(RetryPolicy::no_retries());
        assert!(!faulted.faults.is_none());
        assert_eq!(faulted.retry.max_attempts, 1);
    }

    #[test]
    fn warm_fraction_clamped() {
        assert_eq!(
            BurstSpec::new(w(), 1, 1)
                .with_warm_fraction(1.7)
                .warm_fraction,
            1.0
        );
        assert_eq!(
            BurstSpec::new(w(), 1, 1)
                .with_warm_fraction(-0.2)
                .warm_fraction,
            0.0
        );
    }
}
