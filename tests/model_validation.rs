//! §2.4 validation protocol, run as an integration test over all five
//! benchmarks: the fitted analytical models must pass the Pearson χ²
//! goodness-of-fit test against fresh simulator observations.

use propack_repro::platform::PlatformBuilder;
use propack_repro::platform::{BurstSpec, ServerlessPlatform};
use propack_repro::propack::propack::{ProPackConfig, Propack};
use propack_repro::propack::validate::validate_models;
use propack_repro::stats::chi2::ChiSquareTest;
use propack_repro::workloads::Benchmarks;

#[test]
fn all_five_benchmarks_pass_chi_square_validation() {
    let platform = PlatformBuilder::aws().build();
    let test = ChiSquareTest::paper_default();
    let mut max_service: f64 = 0.0;
    let mut max_expense: f64 = 0.0;
    for bench in Benchmarks::all() {
        let work = bench.profile();
        let pp = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
        let report = validate_models(&platform, &pp.model, &work, 1000, test, 99).unwrap();
        assert!(
            report.accepted(),
            "{}: service χ² {:.3}, expense χ² {:.4} (critical {:.3})",
            work.name,
            report.service.statistic,
            report.expense.statistic,
            report.service.critical_value
        );
        max_service = max_service.max(report.service.statistic);
        max_expense = max_expense.max(report.expense.statistic);
    }
    // The paper's §2.4 worst cases were 3.81 and 0.055 — both accepted.
    // Ours must also be below the critical value with margin.
    assert!(max_service < 4.075, "service worst case {max_service}");
    assert!(max_expense < 4.075, "expense worst case {max_expense}");
}

#[test]
fn interference_fit_error_stays_small_across_apps() {
    // Fig. 4: the exponential model tracks the observed curves.
    let platform = PlatformBuilder::aws().build();
    for bench in Benchmarks::all() {
        let work = bench.profile();
        let pp = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
        for p in (1..=pp.model.p_max).step_by(3) {
            let spec = BurstSpec::new(work.clone(), 5, p).with_seed(1234 ^ p as u64);
            let observed = platform.run_burst(&spec).unwrap().exec_summary().mean();
            let predicted = pp.model.interference.exec_secs(p);
            let rel = (predicted - observed).abs() / observed;
            assert!(
                rel < 0.08,
                "{} degree {p}: model {predicted:.1}s vs observed {observed:.1}s",
                work.name
            );
        }
    }
}

#[test]
fn scaling_fit_is_application_independent() {
    // Fig. 5b: scaling samples from *different applications* fit the same
    // polynomial; predictions from a probe-fitted model match real apps.
    let platform = PlatformBuilder::aws().build();
    let cfg = ProPackConfig::default();
    let pp = Propack::build(&platform, &Benchmarks::all()[0].profile(), &cfg).unwrap();
    for bench in Benchmarks::all() {
        let work = bench.profile();
        for c in [750u32, 1500, 3000] {
            let spec = BurstSpec::new(work.clone(), c, 1).with_seed(55 ^ c as u64);
            let observed = platform.run_burst(&spec).unwrap().scaling_time();
            let predicted = pp.model.scaling.scaling_secs(c as f64);
            let rel = (predicted - observed).abs() / observed;
            // Allow headroom for the app-specific dependency-load shift.
            assert!(
                rel < 0.12,
                "{} C={c}: predicted {predicted:.0}s vs observed {observed:.0}s",
                work.name
            );
        }
    }
}

#[test]
fn execution_time_flat_across_concurrency_for_all_apps() {
    // Fig. 5a, over the full suite: < 5% variation between C=500 and 5000.
    let platform = PlatformBuilder::aws().build();
    for bench in Benchmarks::all() {
        let work = bench.profile();
        let mean_at = |c: u32| {
            platform
                .run_burst(&BurstSpec::new(work.clone(), c, 1).with_seed(808))
                .unwrap()
                .exec_summary()
                .mean()
        };
        let lo = mean_at(500);
        let hi = mean_at(5000);
        assert!(
            ((lo - hi).abs() / lo) < 0.05,
            "{}: {lo:.1}s vs {hi:.1}s",
            work.name
        );
    }
}
