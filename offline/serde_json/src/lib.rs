//! Offline stub for `serde_json`: the API shell only. `to_string` /
//! `from_str` return [`Error::Unavailable`] — the `serde` stub's traits are
//! markers, so there is nothing to drive a real serializer with. JSON
//! round-trip tests are gated behind the workspace's `offline-stub`
//! features; CI builds the real crate and runs them.

use std::collections::BTreeMap;
use std::fmt;

/// The error type; offline, every conversion yields `Unavailable`.
#[derive(Debug, Clone)]
pub enum Error {
    /// Serialization is not available in the offline stub.
    Unavailable,
    /// Parse-style error (never produced offline, kept for API parity).
    Message(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Unavailable => {
                write!(f, "serde_json offline stub: serialization unavailable")
            }
            Error::Message(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Minimal JSON value tree (kept so signatures naming `Value` compile).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl serde::Serialize for Value {}
impl<'de> serde::Deserialize<'de> for Value {}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Err(Error::Unavailable)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Err(Error::Unavailable)
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error::Unavailable)
}
