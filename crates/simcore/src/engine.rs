//! The event loop: a simulated clock plus a deterministic priority queue of
//! scheduled callbacks.
//!
//! Events are `FnOnce(&mut Sim<S>)` closures; firing an event may freely
//! schedule more events (the closure is popped off the heap before it runs,
//! so the borrow is clean). Ties in timestamp are broken by scheduling
//! sequence number, which makes runs reproducible — an essential property
//! for the paper-reproduction experiments, where every figure must
//! regenerate identically from a seed.
//!
//! Event closures are required to be `Send` so that `Sim<S>: Send` whenever
//! the user state `S` is `Send`. A simulation still runs on exactly one
//! thread — the bound exists so the parallel sweep engine
//! (`propack-sweep`) can hand whole simulations to worker threads.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

type EventFn<S> = Box<dyn FnOnce(&mut Sim<S>) + Send>;

struct Scheduled<S> {
    at: SimTime,
    seq: u64,
    run: EventFn<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A discrete-event simulation over user state `S`.
///
/// # Example
/// ```
/// use propack_simcore::{Sim, SimTime};
///
/// let mut sim = Sim::new(0u32);
/// sim.schedule_in(5.0, |s| {
///     *s.state_mut() += 1;
///     // Events can schedule follow-up events.
///     s.schedule_in(5.0, |s| *s.state_mut() += 10);
/// });
/// sim.run();
/// assert_eq!(*sim.state(), 11);
/// assert_eq!(sim.now(), SimTime::from_secs(10.0));
/// ```
pub struct Sim<S> {
    now: SimTime,
    seq: u64,
    fired: u64,
    queue: BinaryHeap<Reverse<Scheduled<S>>>,
    state: S,
}

impl<S> Sim<S> {
    /// Create a simulation at t = 0 around the given state.
    pub fn new(state: S) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            fired: 0,
            queue: BinaryHeap::new(),
            state,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the user state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Mutable access to the user state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consume the simulation, returning the final state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events currently pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `event` to fire at the absolute instant `at`.
    ///
    /// Panics if `at` is in the simulated past — a past-scheduled event is
    /// always a logic bug in the model, never something to silently clamp.
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut Sim<S>) + Send + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {} < now {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            run: Box::new(event),
        }));
    }

    /// Schedule `event` to fire `delay` seconds from now.
    pub fn schedule_in<F>(&mut self, delay: f64, event: F)
    where
        F: FnOnce(&mut Sim<S>) + Send + 'static,
    {
        assert!(delay >= 0.0, "negative delay {delay}");
        self.schedule_at(self.now + delay, event);
    }

    /// Fire the next pending event, if any; returns whether one fired.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(Reverse(ev)) => {
                debug_assert!(ev.at >= self.now, "event heap ordering violated");
                self.now = ev.at;
                self.fired += 1;
                (ev.run)(self);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the queue drains or the clock passes `deadline` (events at
    /// exactly `deadline` still fire). Returns whether the queue drained.
    pub fn run_until(&mut self, deadline: SimTime) -> bool {
        loop {
            match self.queue.peek() {
                None => return true,
                Some(Reverse(ev)) if ev.at > deadline => return false,
                Some(_) => {
                    self.step();
                }
            }
        }
    }
}

impl<S: std::fmt::Debug> std::fmt::Debug for Sim<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("fired", &self.fired)
            .field("state", &self.state)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_in(3.0, |s| s.state_mut().push(3));
        sim.schedule_in(1.0, |s| s.state_mut().push(1));
        sim.schedule_in(2.0, |s| s.state_mut().push(2));
        sim.run();
        assert_eq!(sim.state(), &[1, 2, 3]);
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        for i in 0..100 {
            sim.schedule_at(SimTime::from_secs(7.0), move |s| s.state_mut().push(i));
        }
        sim.run();
        let want: Vec<u32> = (0..100).collect();
        assert_eq!(sim.state(), &want);
    }

    #[test]
    fn events_can_cascade() {
        let mut sim = Sim::new(0u64);
        fn tick(s: &mut Sim<u64>) {
            *s.state_mut() += 1;
            if *s.state() < 10 {
                s.schedule_in(1.0, tick);
            }
        }
        sim.schedule_in(1.0, tick);
        sim.run();
        assert_eq!(*sim.state(), 10);
        assert_eq!(sim.now(), SimTime::from_secs(10.0));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new(0u32);
        for i in 1..=10 {
            sim.schedule_at(SimTime::from_secs(i as f64), |s| *s.state_mut() += 1);
        }
        let drained = sim.run_until(SimTime::from_secs(5.0));
        assert!(!drained);
        assert_eq!(*sim.state(), 5);
        assert_eq!(sim.events_pending(), 5);
        assert!(sim.run_until(SimTime::from_secs(100.0)));
        assert_eq!(*sim.state(), 10);
    }

    #[test]
    fn zero_delay_fires_after_current_event() {
        let mut sim = Sim::new(Vec::<&'static str>::new());
        sim.schedule_in(1.0, |s| {
            s.state_mut().push("a");
            s.schedule_in(0.0, |s| s.state_mut().push("c"));
            s.state_mut().push("b");
        });
        sim.run();
        assert_eq!(sim.state(), &["a", "b", "c"]);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new(());
        sim.schedule_in(5.0, |s| {
            s.schedule_at(SimTime::from_secs(1.0), |_| {});
        });
        sim.run();
    }

    #[test]
    fn clock_monotone_non_decreasing() {
        let mut sim = Sim::new(Vec::<f64>::new());
        // Deterministic but shuffled delays.
        for i in 0..50u64 {
            let d = ((i * 7919) % 97) as f64 * 0.5;
            sim.schedule_in(d, move |s| {
                let now = s.now().as_secs();
                s.state_mut().push(now);
            });
        }
        sim.run();
        for w in sim.state().windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}
