//! ProPack: the paper's core contribution.
//!
//! ProPack determines, for an application that wants `C` concurrent
//! serverless functions, the optimal number of functions to *pack* into
//! each function instance. It decomposes the problem exactly as §2 of the
//! paper does:
//!
//! 1. **Performance interference estimation** ([`interference`]) — fit
//!    `ET(P) = A·e^{k·P}` (Eq. 1) from a handful of low-concurrency
//!    profiling runs, sampling alternate packing degrees;
//! 2. **Service-time modeling** ([`scaling`], [`model`]) — fit the
//!    application-independent scaling-time polynomial
//!    `β₁·C_eff² + β₂·C_eff − β₃` (Eq. 2) from ~10 cheap probe bursts, then
//!    `S(P) = ET(P) + ScalingTime(C/P)` (Eq. 3);
//! 3. **Cost modeling** ([`model`]) — `E(P) = ET(P)·R·(C/P)` (Eq. 4) plus
//!    the request/storage/network components the bill actually contains;
//! 4. **Joint optimization** ([`optimizer`]) — minimize
//!    `W_S·ΔS + W_E·ΔE` (Eqs. 5–7), with a QoS-aware weight search
//!    ([`qos`], Eqs. 8–9) for tail-latency-bound applications;
//! 5. **Validation** ([`validate`]) — the Pearson χ² goodness-of-fit
//!    acceptance of §2.4.
//!
//! The [`propack::Propack`] front-end ties it together: `Propack::build`
//! profiles an application on any [`ServerlessPlatform`](propack_platform::ServerlessPlatform), accounting for
//! every probe run's cost as overhead (the paper includes this overhead in
//! all results), and `plan` / `execute` select and run the optimal packing.
//!
//! ```
//! use propack_model::propack::{Propack, ProPackConfig};
//! use propack_model::optimizer::Objective;
//! use propack_platform::{PlatformBuilder, WorkProfile};
//!
//! let platform = PlatformBuilder::aws().build();
//! let work = WorkProfile::synthetic("app", 0.25, 100.0).with_contention(0.2);
//! let pp = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
//! let plan = pp.plan(5000, Objective::default()).unwrap();
//! assert!(plan.packing_degree > 1, "high concurrency must pack");
//! ```

pub mod cache;
pub mod hetero;
pub mod interference;
pub mod model;
pub mod optimizer;
pub mod persist;
pub mod profiler;
pub mod propack;
pub mod qos;
pub mod scaling;
pub mod validate;

pub use cache::{ModelCache, ModelKey};
pub use interference::InterferenceModel;
pub use model::PackingModel;
pub use optimizer::{Objective, PackingPlan};
pub use propack::{ProPackConfig, Propack};
pub use scaling::ScalingModel;

/// Errors from model building and planning.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The statistics layer rejected a fit.
    Fit(propack_stats::StatsError),
    /// The platform rejected a profiling burst.
    Platform(propack_platform::PlatformError),
    /// Not enough profiling samples to fit the requested model.
    NotEnoughSamples { needed: usize, got: usize },
    /// No objective weight satisfies the QoS bound (Eq. 9 infeasible).
    QosInfeasible {
        bound_secs: f64,
        best_tail_secs: f64,
    },
    /// A joint-objective service-time weight outside `[0, 1]` (Eq. 7
    /// requires `W_S + W_E = 1` with both weights non-negative).
    InvalidWeight { w_s: f64 },
}

impl From<propack_stats::StatsError> for ModelError {
    fn from(e: propack_stats::StatsError) -> Self {
        ModelError::Fit(e)
    }
}

impl From<propack_platform::PlatformError> for ModelError {
    fn from(e: propack_platform::PlatformError) -> Self {
        ModelError::Platform(e)
    }
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Fit(e) => write!(f, "model fit failed: {e}"),
            ModelError::Platform(e) => write!(f, "profiling burst failed: {e}"),
            ModelError::NotEnoughSamples { needed, got } => {
                write!(f, "not enough profiling samples: needed {needed}, got {got}")
            }
            ModelError::QosInfeasible { bound_secs, best_tail_secs } => write!(
                f,
                "QoS bound of {bound_secs:.1}s unreachable: best achievable tail is {best_tail_secs:.1}s"
            ),
            ModelError::InvalidWeight { w_s } => write!(
                f,
                "joint service-time weight must be in [0, 1], got {w_s}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}
