//! simlint fixture: deliberate `fault-rng` violations (3 sites).
use rand_chacha::ChaCha8Rng;

pub fn crash_draw(seed: u64, instance: u32) -> f64 {
    // Hand-rolled generator instead of the seeded RngStreams lane tree.
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ u64::from(instance));
    rng.random::<f64>()
}
