//! Seeded-replay determinism: the invariant the simlint pass exists to
//! protect (`cargo xtask simlint`, DESIGN.md §6).
//!
//! Every simulated quantity — the full lifecycle event trace, per-instance
//! timestamps, service times, and the itemized bill — must be bit-identical
//! when the same burst replays with the same seed, and must differ when the
//! seed differs (otherwise the jitter streams are dead and the percentile
//! claims of Fig. 5 are meaningless).

use propack_repro::platform::PlatformBuilder;
use propack_repro::platform::{BurstSpec, CloudPlatform};
use propack_repro::propack::optimizer::Objective;
use propack_repro::propack::propack::{ProPackConfig, Propack};
use propack_repro::stats::percentile::Percentile;
use propack_repro::workloads::video::Video;
use propack_repro::workloads::Workload;

fn aws() -> CloudPlatform {
    PlatformBuilder::aws().build()
}

/// The paper's Fig. 9 setting: Video at original concurrency C = 1000,
/// packed at degree 25 → 40 instances.
fn video_burst(seed: u64) -> BurstSpec {
    BurstSpec::packed(Video::default().profile(), 1000, 25).with_seed(seed)
}

#[test]
fn same_seed_replays_bit_identical() {
    let platform = aws();
    let (report_a, trace_a) = platform.run_burst_traced(&video_burst(42)).unwrap();
    let (report_b, trace_b) = platform.run_burst_traced(&video_burst(42)).unwrap();

    // Event traces: same events, same order, same virtual timestamps.
    assert_eq!(trace_a.events(), trace_b.events());
    assert!(!trace_a.events().is_empty(), "tracing was enabled");

    // Per-instance lifecycle records, scaling decomposition, service times,
    // and the bill — all exact. `RunReport: PartialEq` covers every field.
    assert_eq!(report_a, report_b);
    for metric in [Percentile::Median, Percentile::Tail95, Percentile::Total] {
        assert_eq!(
            report_a.service_time(metric).to_bits(),
            report_b.service_time(metric).to_bits(),
            "{metric:?} service time must replay bit-identically"
        );
    }
    assert_eq!(
        report_a.expense.total_usd().to_bits(),
        report_b.expense.total_usd().to_bits()
    );
}

#[test]
fn different_seed_perturbs_the_timeline() {
    let platform = aws();
    let (report_a, _) = platform.run_burst_traced(&video_burst(42)).unwrap();
    let (report_b, _) = platform.run_burst_traced(&video_burst(43)).unwrap();
    assert_ne!(
        report_a.instances, report_b.instances,
        "control-plane jitter must react to the seed"
    );
}

#[test]
fn propack_end_to_end_replays_identically() {
    // Build → plan → execute is seeded too: profiling probes run on the
    // simulated platform, so the whole pipeline must replay exactly.
    let platform = aws();
    let work = Video::default().profile();
    let run = || {
        let pp = Propack::build(&platform, &work, &ProPackConfig::default()).unwrap();
        pp.execute(&platform, 1000, Objective::default(), 7)
            .unwrap()
    };
    let out_a = run();
    let out_b = run();
    assert_eq!(out_a.plan.packing_degree, out_b.plan.packing_degree);
    assert_eq!(out_a.plan.instances, out_b.plan.instances);
    assert_eq!(out_a.report, out_b.report);
    assert_eq!(
        out_a.expense_with_overhead_usd().to_bits(),
        out_b.expense_with_overhead_usd().to_bits()
    );
}
