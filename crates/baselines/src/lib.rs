//! Baselines and competing techniques from the paper's evaluation (§3–4):
//!
//! * [`strategies::NoPacking`] — the traditional spawning baseline
//!   (packing degree = 1); every figure's "% improvement over no packing"
//!   is measured against this.
//! * [`strategies::SerialBatching`] — the intuitive alternative §1
//!   dismisses: split the burst into smaller batches and spawn them
//!   serially. Reduces concurrency but serializes the turnaround time.
//! * [`strategies::Staggered`] — the latency-hiding alternative §4
//!   mentions ("we also attempted other latency-hiding techniques such as
//!   staggering instances"): waves spaced by a fixed delay.
//! * [`strategies::Pywren`] — the state-of-the-art serverless workload
//!   manager ProPack compares against in Fig. 19: instance reuse (warm
//!   starts), dependency-load amortization, and optimized data movement,
//!   but **no packing** — so the quadratic scheduling term survives.
//! * [`oracle::Oracle`] — the exhaustive brute-force search over packing
//!   degrees (§3: "We perform an exhaustive brute force search to
//!   determine the optimal packing degree (Oracle packing degree)"), the
//!   accuracy yardstick for ProPack's analytical model (Figs. 8, 15, 20a).
//!
//! All of them produce a uniform [`outcome::StrategyOutcome`] so the
//! benchmark harness can compare service time, scaling time, and expense
//! across techniques with one code path.

pub mod oracle;
pub mod outcome;
pub mod strategies;

pub use oracle::{Oracle, OracleObjective, OracleResult};
pub use outcome::StrategyOutcome;
pub use strategies::{NoPacking, Pywren, SerialBatching, Staggered, Strategy};
