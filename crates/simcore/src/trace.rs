//! Lightweight event tracing for simulations.
//!
//! The platform simulator emits a [`TraceEvent`] per lifecycle transition of
//! each function instance (scheduled → built → shipped → started →
//! finished). Traces power the figure-reproduction binaries (which need the
//! full start-time distribution, not just aggregates) and make test
//! assertions about mechanism — e.g. "shipping never precedes build
//! completion" — straightforward.

use crate::time::SimTime;

/// One timestamped lifecycle event, tagged with the entity it concerns.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When the event occurred on the simulated clock.
    pub at: SimTime,
    /// Entity identifier (e.g. function-instance index).
    pub entity: u64,
    /// Lifecycle stage label (static so traces stay allocation-light).
    pub stage: &'static str,
}

/// An append-only trace buffer.
///
/// Tracing can be disabled (the default for large sweeps) so that hot runs
/// pay only a branch per event.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// A tracer that records events.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// A tracer that drops events (zero allocation).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, at: SimTime, entity: u64, stage: &'static str) {
        if self.enabled {
            self.events.push(TraceEvent { at, entity, stage });
        }
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events for one entity, in recording order.
    pub fn for_entity(&self, entity: u64) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.entity == entity)
    }

    /// Events at a given stage, in recording order.
    pub fn at_stage(&self, stage: &'static str) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.stage == stage)
    }

    /// Timestamp of the first event at `stage` for `entity`, if any.
    pub fn when(&self, entity: u64, stage: &'static str) -> Option<SimTime> {
        self.events
            .iter()
            .find(|e| e.entity == entity && e.stage == stage)
            .map(|e| e.at)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn records_and_queries() {
        let mut tr = Tracer::enabled();
        tr.record(t(1.0), 0, "scheduled");
        tr.record(t(2.0), 0, "started");
        tr.record(t(1.5), 1, "scheduled");
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.when(0, "started"), Some(t(2.0)));
        assert_eq!(tr.when(1, "started"), None);
        assert_eq!(tr.for_entity(0).count(), 2);
        assert_eq!(tr.at_stage("scheduled").count(), 2);
    }

    #[test]
    fn disabled_tracer_drops_events() {
        let mut tr = Tracer::disabled();
        tr.record(t(1.0), 0, "scheduled");
        assert!(tr.is_empty());
        assert!(!tr.is_enabled());
    }
}
