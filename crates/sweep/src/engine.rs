//! The work-stealing parallel sweep engine.
//!
//! [`SweepRunner`] fans a [`SweepSpec`] grid across `std::thread` workers.
//! Each cell is an *independent seeded simulation* — a fresh platform, a
//! fresh DES timeline, its own RNG streams — so cells never share mutable
//! state and any execution order yields the same per-cell numbers. The only
//! cross-cell structure is the shared [`ModelCache`], whose hits are
//! provably invisible in results (see `propack_model::cache`).
//!
//! Scheduling is work-stealing over per-worker deques: cell indices are
//! dealt round-robin, each worker pops its own deque from the front and
//! steals from the *back* of a victim's deque when it runs dry. No work is
//! ever added after seeding, so an empty full scan means the sweep is
//! drained. The merge then sorts by [`CellKey`], which is what makes
//! `--threads N` output byte-identical to `--threads 1`.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use propack_baselines::{NoPacking, Pywren, Strategy, StrategyOutcome};
use propack_model::cache::ModelCache;
use propack_model::optimizer::Objective;
use propack_model::propack::ProPackConfig;
use propack_platform::{BurstSpec, WarmPool, WarmPoolConfig};
use propack_replay::{Controller, ReplayEngine, ReplaySpec};
use propack_workflow::{run_workflow, MapPacking, WorkflowSpec};

use crate::cell::{expand, Cell, CellKey, CellResult};
use crate::report::SweepReport;
use crate::spec::{PackingPolicy, ReplayGrid, SweepError, SweepSpec};

/// Executes sweep grids; configure with the builder-style setters, then
/// call [`SweepRunner::run`].
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A serial runner (one worker thread).
    pub fn new() -> Self {
        SweepRunner { threads: 1 }
    }

    /// Set the worker count. Values are clamped to at least 1; the engine
    /// also never spawns more workers than there are cells.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Run `spec` with a private model cache (one ProPack fit per distinct
    /// `(platform, workload, fit_config)` across the whole grid).
    pub fn run(&self, spec: &SweepSpec) -> Result<SweepReport, SweepError> {
        self.run_with_cache(spec, &ModelCache::new())
    }

    /// Run `spec` against a caller-provided model cache, e.g. one shared
    /// across several sweeps. Results are identical to [`SweepRunner::run`]
    /// whether the cache is cold or prewarmed; only the hit/miss counters
    /// (which are cache-lifetime totals) differ.
    pub fn run_with_cache(
        &self,
        spec: &SweepSpec,
        models: &ModelCache,
    ) -> Result<SweepReport, SweepError> {
        spec.validate()?;
        let started = Instant::now();
        let cells = expand(spec);
        let workers = self.threads.min(cells.len()).max(1);
        let mut results = if workers == 1 {
            cells
                .iter()
                .map(|cell| run_cell(cell, &spec.fit_config, models))
                .collect()
        } else {
            run_parallel(&cells, &spec.fit_config, models, workers)
        };
        // The deterministic reduce: order by cell key, never by completion.
        results.sort_by(|a, b| a.key.cmp(&b.key));
        debug_assert_eq!(results.len(), cells.len());
        Ok(SweepReport {
            name: spec.name.clone(),
            threads: workers,
            cells: results,
            fitted_models: models.len(),
            fit_hits: models.hits(),
            fit_misses: models.misses(),
            wall_secs: started.elapsed().as_secs_f64(),
        })
    }
}

/// Fan `cells` across `workers` threads with work-stealing deques.
fn run_parallel(
    cells: &[Cell],
    fit_config: &ProPackConfig,
    models: &ModelCache,
    workers: usize,
) -> Vec<CellResult> {
    // Deal indices round-robin so each worker starts with a balanced,
    // deterministic share; stealing rebalances when cells are uneven.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..cells.len()).step_by(workers).collect()))
        .collect();

    let mut results = Vec::with_capacity(cells.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    while let Some(i) = next_index(queues, w) {
                        mine.push(run_cell(&cells[i], fit_config, models));
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(batch) => results.extend(batch),
                // A worker panic is a bug in the simulator, not a cell
                // outcome; surface it instead of silently dropping cells.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    results
}

/// Claim the next cell index for worker `w`: own deque front first, then
/// steal from the back of the other deques. `None` means the grid is
/// drained (no work is ever added after seeding).
fn next_index(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = lock(&queues[w]).pop_front() {
        return Some(i);
    }
    for step in 1..queues.len() {
        if let Some(i) = lock(&queues[(w + step) % queues.len()]).pop_back() {
            return Some(i);
        }
    }
    None
}

fn lock(queue: &Mutex<VecDeque<usize>>) -> MutexGuard<'_, VecDeque<usize>> {
    // A poisoned deque only means another worker panicked while holding the
    // guard; the indices themselves are still valid work.
    queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Run one cell, capturing host wall time for `BENCH_sweep.json`. The
/// fit-vs-run split (`fit_ms` is stamped inside [`simulate`] around the
/// model-cache consult) attributes the remainder to burst execution.
fn run_cell(cell: &Cell, fit_config: &ProPackConfig, models: &ModelCache) -> CellResult {
    let started = Instant::now();
    let mut result = simulate(cell, fit_config, models);
    result.wall_ms = started.elapsed().as_secs_f64() * 1e3;
    result.run_ms = (result.wall_ms - result.fit_ms).max(0.0);
    result
}

/// The cell body: build a fresh platform from the axis, resolve the cell's
/// fault scenario against it (a `default` scenario means each provider's
/// own calibrated rates), and execute the cell's policy under those faults.
/// Failures (e.g. a packing degree the platform rejects) are recorded in
/// the result, not raised — one bad cell must not sink a thousand-cell
/// sweep.
fn simulate(cell: &Cell, fit_config: &ProPackConfig, models: &ModelCache) -> CellResult {
    if let Some(shape) = &cell.workflow {
        return simulate_workflow(cell, shape, fit_config, models);
    }
    if let (Some(controller), Some(grid)) = (&cell.controller, &cell.replay) {
        return simulate_replay(cell, controller, grid, fit_config, models);
    }
    let platform = cell.platform.build();
    let faults = cell.faults.resolve(&*platform);
    let retry = cell.faults.retry;
    match cell.policy {
        PackingPolicy::NoPacking => from_strategy(
            &cell.key,
            NoPacking.run_faulted(
                &*platform,
                &cell.work,
                cell.concurrency,
                cell.seed,
                faults,
                retry,
            ),
        ),
        PackingPolicy::Pywren => from_strategy(
            &cell.key,
            Pywren::default().run_faulted(
                &*platform,
                &cell.work,
                cell.concurrency,
                cell.seed,
                faults,
                retry,
            ),
        ),
        PackingPolicy::Fixed(p) => {
            let burst = BurstSpec::packed(cell.work.clone(), cell.concurrency, p)
                .with_seed(cell.seed)
                .with_faults(faults)
                .with_retry(retry);
            from_strategy(
                &cell.key,
                platform
                    .run_burst(&burst)
                    .map(|report| StrategyOutcome::from_report(format!("Fixed ({p})"), &report)),
            )
        }
        PackingPolicy::Propack { objective } => {
            // Profiling stays fault-free (the model cache key excludes the
            // fault axis); only the planned execution burst is faulted.
            let fit_started = Instant::now();
            let fitted = models.fit(&*platform, &cell.work, fit_config);
            let fit_ms = fit_started.elapsed().as_secs_f64() * 1e3;
            let pp = match fitted {
                Err(e) => return failed(&cell.key, e.to_string()),
                Ok(pp) => pp,
            };
            // Every scenario goes through the warm-state-aware request
            // pipeline. A classic cell's pool starts empty — under a cold
            // keep-alive policy it *stays* empty — so the snapshot is cold,
            // the plan matches a pool-free `Propack::request`, and only
            // replay cells accumulate reuse.
            let mut pool = WarmPool::new(
                WarmPoolConfig::cold()
                    .with_policy(cell.keepalive.policy)
                    .with_seed(cell.seed)
                    .with_placement_secs(platform.placement_secs()),
            );
            let snapshot = pool.snapshot(&cell.work.name, 0.0);
            match pp.request_with_pool(cell.concurrency, objective, &snapshot) {
                Err(e) => failed(&cell.key, e.to_string()),
                Ok((plan, request)) => {
                    let run = request
                        .with_seed(cell.seed)
                        .with_faults(faults)
                        .with_retry(retry)
                        .run_pooled(&*platform, &mut pool, 0.0);
                    match run {
                        Err(e) => failed(&cell.key, e.to_string()),
                        Ok(run) => CellResult {
                            key: cell.key.clone(),
                            packing_degree: plan.packing_degree,
                            instances: run.instances(),
                            service_secs: run.total_service_secs(),
                            scaling_secs: run.rounds.first().map_or(0.0, |r| r.scaling_time()),
                            // The paper's accounting: profiling overhead is
                            // charged to ProPack (once per model, baked into
                            // the fitted model, so cache hits change nothing).
                            expense_usd: run.expense_usd() + pp.overhead.expense_usd,
                            function_hours: run.function_hours() + pp.overhead.function_hours,
                            retries: run.faults().retries,
                            failed_functions: run.abandoned_functions,
                            error: None,
                            wall_ms: 0.0,
                            fit_ms,
                            run_ms: 0.0,
                        },
                    }
                }
            }
        }
    }
}

/// The replay-cell body: window the grid's trace into epochs and drive it
/// under the cell's controller through [`ReplayEngine`]. The cell's seed
/// decorrelates replications, its fault scenario applies to every epoch's
/// burst, and the concurrency axis value is ignored — replay cells draw
/// their load from the trace. Host timing is injected here because this
/// crate is wall-clock exempt and the replay crate is not.
fn simulate_replay(
    cell: &Cell,
    controller: &Controller,
    grid: &ReplayGrid,
    fit_config: &ProPackConfig,
    models: &ModelCache,
) -> CellResult {
    let platform = cell.platform.build();
    let spec = ReplaySpec {
        epoch_secs: grid.epoch_secs,
        seed: cell.seed,
        objective: grid.objective,
        qos_secs: grid.qos_secs,
        faults: cell.faults.resolve(&*platform),
        retry: cell.faults.retry,
        keepalive: cell.keepalive.policy,
        // Regret shadows double each epoch's burst work; sweep grids value
        // throughput over oracle gaps, so the standalone replay CLI owns it.
        regret: false,
        fit_config: fit_config.clone(),
    };
    let origin = Instant::now();
    let clock = move || origin.elapsed().as_secs_f64();
    let run = ReplayEngine::new(spec).run_with_clock(
        &*platform,
        &cell.work,
        &grid.trace,
        controller,
        models,
        &clock,
    );
    match run {
        Err(e) => failed(&cell.key, e.to_string()),
        Ok(report) => {
            // Per-epoch failures degrade the cell, they don't erase its
            // aggregates; the first message stands in for the details the
            // full `ReplayReport` render would show.
            let error = (report.error_count() > 0).then(|| {
                let first = report
                    .epochs
                    .iter()
                    .find_map(|e| e.error.clone())
                    .unwrap_or_default();
                format!(
                    "{} of {} epochs failed; first: {first}",
                    report.error_count(),
                    report.epochs.len(),
                )
            });
            CellResult {
                key: cell.key.clone(),
                packing_degree: report.max_degree(),
                instances: report.epochs.iter().map(|e| e.instances).sum(),
                service_secs: report.total_service_secs(),
                // Replay accounts scaling inside each epoch's service time;
                // there is no separate cross-epoch scaling span.
                scaling_secs: 0.0,
                expense_usd: report.total_expense_usd(),
                function_hours: report.total_function_hours(),
                retries: report.total_retries(),
                failed_functions: report.total_failed(),
                error,
                wall_ms: 0.0,
                fit_ms: report.fit_ms,
                run_ms: 0.0,
            }
        }
    }
}

/// The sweep policy axis, mapped onto per-Map packing for workflow cells.
/// `None` means the policy has no workflow equivalent (Pywren's warm reuse
/// is a whole-burst baseline, rejected by spec validation).
fn map_packing(policy: &PackingPolicy) -> Option<MapPacking> {
    match policy {
        PackingPolicy::NoPacking => Some(MapPacking::None),
        PackingPolicy::Fixed(p) => Some(MapPacking::Fixed(*p)),
        PackingPolicy::Pywren => None,
        PackingPolicy::Propack { objective } => {
            let w_s = match objective {
                Objective::ServiceTime => 1.0,
                Objective::Expense => 0.0,
                Objective::Joint { w_s } => *w_s,
            };
            Some(MapPacking::ProPack { w_s })
        }
    }
}

/// The workflow-cell body: lower the cell's shape onto a DAG workflow spec
/// (the concurrency axis becomes the Map fan-out, the policy axis the
/// per-Map packing, the keep-alive axis the workflow pool policy) and
/// replay it through the workflow engine. The whole-workflow makespan
/// stands in for the flat burst's service time; packing degree reports the
/// widest stage, instances the total placed across stages.
fn simulate_workflow(
    cell: &Cell,
    shape: &str,
    fit_config: &ProPackConfig,
    models: &ModelCache,
) -> CellResult {
    let Some(packing) = map_packing(&cell.policy) else {
        return failed(
            &cell.key,
            format!("policy `{}` has no workflow equivalent", cell.key.policy),
        );
    };
    let platform = cell.platform.build();
    let spec = match WorkflowSpec::from_shape(shape, &cell.work, cell.concurrency, packing) {
        Err(e) => return failed(&cell.key, e.to_string()),
        Ok(spec) => spec
            .with_seed(cell.seed)
            .with_faults(cell.faults.resolve(&*platform), cell.faults.retry)
            .with_keepalive(cell.keepalive.policy)
            .with_fit_config(fit_config.clone()),
    };
    match run_workflow(&*platform, &spec, models) {
        Err(e) => failed(&cell.key, e.to_string()),
        Ok(report) => CellResult {
            key: cell.key.clone(),
            packing_degree: report
                .stages
                .iter()
                .map(|s| s.packing_degree)
                .max()
                .unwrap_or(0),
            instances: report.stages.iter().map(|s| s.instances).sum(),
            service_secs: report.makespan_secs,
            // The DAG has no single scaling span; per-stage scaling is
            // already inside each stage's duration (and the makespan).
            scaling_secs: 0.0,
            expense_usd: report.expense_usd,
            function_hours: report.function_hours,
            retries: report.faults.retries,
            failed_functions: report.faults.failed_functions,
            error: None,
            // Fits and bursts interleave inside the engine, so the whole
            // workflow is charged to `run_ms` (the `wall_ms − fit_ms`
            // remainder stamped by `run_cell`).
            wall_ms: 0.0,
            fit_ms: 0.0,
            run_ms: 0.0,
        },
    }
}

fn from_strategy<E: std::fmt::Display>(
    key: &CellKey,
    outcome: Result<StrategyOutcome, E>,
) -> CellResult {
    match outcome {
        Err(e) => failed(key, e.to_string()),
        Ok(o) => CellResult {
            key: key.clone(),
            packing_degree: o.packing_degree,
            instances: o.completion_times.len() as u32,
            service_secs: o.total_service_secs(),
            scaling_secs: o.scaling_secs,
            expense_usd: o.expense_usd,
            function_hours: o.function_hours,
            retries: o.faults.retries,
            failed_functions: o.faults.failed_functions,
            error: None,
            wall_ms: 0.0,
            fit_ms: 0.0,
            run_ms: 0.0,
        },
    }
}

fn failed(key: &CellKey, error: String) -> CellResult {
    CellResult {
        key: key.clone(),
        packing_degree: 0,
        instances: 0,
        service_secs: 0.0,
        scaling_secs: 0.0,
        expense_usd: 0.0,
        function_hours: 0.0,
        retries: 0,
        failed_functions: 0,
        error: Some(error),
        wall_ms: 0.0,
        fit_ms: 0.0,
        run_ms: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultScenario;
    use crate::spec::PlatformAxis;
    use propack_platform::WorkProfile;

    fn work(name: &str) -> WorkProfile {
        WorkProfile::synthetic(name, 0.25, 45.0).with_contention(0.2)
    }

    fn small_spec() -> SweepSpec {
        SweepSpec::new("engine-test")
            .platforms([PlatformAxis::Aws, PlatformAxis::Google])
            .workloads([work("w1"), work("w2")])
            .concurrency([200, 800])
            .policies([
                PackingPolicy::NoPacking,
                PackingPolicy::Fixed(4),
                PackingPolicy::propack_default(),
            ])
            .seeds([7, 8])
    }

    #[test]
    fn parallel_render_matches_serial_bit_for_bit() {
        let spec = small_spec();
        let serial = SweepRunner::new().run(&spec).unwrap();
        for threads in [2, 4, 8] {
            let parallel = SweepRunner::new().threads(threads).run(&spec).unwrap();
            assert_eq!(serial.render(), parallel.render(), "threads={threads}");
        }
    }

    #[test]
    fn one_model_fit_per_distinct_workload() {
        let spec = small_spec();
        let models = ModelCache::new();
        let report = SweepRunner::new().run_with_cache(&spec, &models).unwrap();
        // 2 platforms x 2 workloads share fits across concurrency & seeds.
        assert_eq!(report.fitted_models, 4);
        // Every propack cell consulted the cache exactly once.
        assert_eq!(report.fit_hits + report.fit_misses, 2 * 2 * 2 * 2);
    }

    #[test]
    fn prewarmed_cache_changes_nothing_in_output() {
        let spec = small_spec();
        let cold = SweepRunner::new().run(&spec).unwrap();
        let models = ModelCache::new();
        let _ = SweepRunner::new().run_with_cache(&spec, &models).unwrap();
        let warm = SweepRunner::new()
            .threads(4)
            .run_with_cache(&spec, &models)
            .unwrap();
        assert_eq!(cold.render(), warm.render());
    }

    #[test]
    fn fault_scenarios_report_retries_and_cost_more() {
        let spec = SweepSpec::new("faulted")
            .platforms([PlatformAxis::Aws])
            .workloads([work("w")])
            .concurrency([400])
            .policies([PackingPolicy::Fixed(4), PackingPolicy::NoPacking])
            .seeds([7])
            .faults([
                FaultScenario::none(),
                FaultScenario::parse("crash=0.05").unwrap(),
            ]);
        let report = SweepRunner::new().run(&spec).unwrap();
        assert_eq!(report.cells.len(), 4);
        let cell = |policy: &str, faults: &str| {
            report
                .cells
                .iter()
                .find(|c| c.key.policy == policy && c.key.faults == faults)
                .expect("cell present")
        };
        for policy in ["fixed-4", "no-packing"] {
            let clean = cell(policy, "none");
            let faulty = cell(policy, "crash=0.05");
            assert_eq!(clean.retries, 0, "{policy}: fault-free cell retried");
            assert!(faulty.retries > 0, "{policy}: crashes must trigger retries");
            assert!(
                faulty.expense_usd > clean.expense_usd,
                "{policy}: billed partial attempts must raise the bill"
            );
            assert!(
                faulty.service_secs > clean.service_secs,
                "{policy}: retries and backoff must stretch service time"
            );
        }
    }

    #[test]
    fn faulted_sweeps_stay_thread_count_invariant() {
        let spec = SweepSpec::new("faulted-threads")
            .platforms([PlatformAxis::Aws, PlatformAxis::FuncX])
            .workloads([work("w")])
            .concurrency([200])
            .policies([PackingPolicy::Fixed(4), PackingPolicy::propack_default()])
            .seeds([3, 4])
            .faults([
                FaultScenario::provider_default(),
                FaultScenario::parse("crash=0.02,straggler=0.05").unwrap(),
            ]);
        let serial = SweepRunner::new().run(&spec).unwrap();
        for threads in [4, 8] {
            let parallel = SweepRunner::new().threads(threads).run(&spec).unwrap();
            assert_eq!(serial.render(), parallel.render(), "threads={threads}");
        }
    }

    #[test]
    fn fault_axis_shares_model_fits_across_scenarios() {
        // Profiling is fault-free, so the cache key excludes the fault
        // axis: two scenarios reuse one fit per (platform, workload).
        let spec = SweepSpec::new("fault-cache")
            .platforms([PlatformAxis::Aws])
            .workloads([work("w")])
            .concurrency([200])
            .policies([PackingPolicy::propack_default()])
            .seeds([1])
            .faults([
                FaultScenario::none(),
                FaultScenario::parse("crash=0.01").unwrap(),
            ]);
        let models = ModelCache::new();
        let report = SweepRunner::new().run_with_cache(&spec, &models).unwrap();
        assert_eq!(report.fitted_models, 1);
        assert_eq!(report.fit_hits + report.fit_misses, 2);
    }

    #[test]
    fn infeasible_cells_record_errors_without_sinking_the_sweep() {
        // Degree 64 x 0.25 GB = 16 GB, past every preset's memory cap.
        let spec = SweepSpec::new("errors")
            .platforms([PlatformAxis::Aws])
            .workloads([work("w")])
            .concurrency([128])
            .policies([PackingPolicy::Fixed(64), PackingPolicy::NoPacking])
            .seeds([1]);
        let report = SweepRunner::new().threads(2).run(&spec).unwrap();
        assert_eq!(report.cells.len(), 2);
        let by_policy = |label: &str| {
            report
                .cells
                .iter()
                .find(|c| c.key.policy == label)
                .expect("cell present")
        };
        assert!(by_policy("fixed-64").error.is_some());
        assert!(by_policy("no-packing").is_ok());
    }

    #[test]
    fn invalid_spec_is_rejected_up_front() {
        let spec = SweepSpec::new("empty");
        assert!(SweepRunner::new().run(&spec).is_err());
    }

    fn replay_spec(name: &str) -> SweepSpec {
        use propack_replay::ArrivalTrace;
        let trace = ArrivalTrace::diurnal("w", 1.0, 0.8, 600.0, 600.0, 11).expect("trace");
        SweepSpec::new(name)
            .platforms([PlatformAxis::Aws])
            .workloads([work("w")])
            .concurrency([1])
            .policies([PackingPolicy::NoPacking])
            .seeds([7, 8])
            .replay(ReplayGrid::new(trace, 100.0))
            .controllers([
                Controller::Fixed(4),
                Controller::Oracle,
                Controller::parse("propack:ewma").expect("controller"),
            ])
            .fit_config(ProPackConfig {
                scaling_levels: vec![10, 20, 40],
                ..ProPackConfig::default()
            })
    }

    #[test]
    fn controller_axis_stays_thread_count_invariant() {
        let spec = replay_spec("replay-threads");
        let serial = SweepRunner::new().run(&spec).unwrap();
        assert_eq!(serial.cells.len(), 6);
        assert_eq!(serial.error_count(), 0);
        for threads in [2, 4, 8] {
            let parallel = SweepRunner::new().threads(threads).run(&spec).unwrap();
            assert_eq!(serial.render(), parallel.render(), "threads={threads}");
        }
    }

    #[test]
    fn replay_cells_share_one_fit_across_controllers_and_seeds() {
        let spec = replay_spec("replay-cache");
        let models = ModelCache::new();
        let report = SweepRunner::new().run_with_cache(&spec, &models).unwrap();
        // Only oracle and propack:ewma consult the cache (fixed-4 never
        // fits); 2 controllers x 2 seeds share the single fit.
        assert_eq!(report.fitted_models, 1);
        assert_eq!(report.fit_hits + report.fit_misses, 4);
        // Replay cells carry the fit timing for `BENCH_sweep.json`; the
        // cell that missed the cache paid real fit time.
        let planned: Vec<_> = report
            .cells
            .iter()
            .filter(|c| c.key.controller != "fixed-4")
            .collect();
        assert_eq!(planned.len(), 4);
        assert!(planned.iter().all(|c| c.is_ok()));
    }

    #[test]
    fn keepalive_axis_classic_cells_keep_their_cold_numbers() {
        use crate::keepalive::KeepAliveScenario;
        let spec = SweepSpec::new("keepalive-classic")
            .platforms([PlatformAxis::Aws])
            .workloads([work("w")])
            .concurrency([400])
            .policies([PackingPolicy::propack_default()])
            .seeds([7])
            .keepalive([
                KeepAliveScenario::cold(),
                KeepAliveScenario::parse("fixed:60").unwrap(),
            ]);
        let report = SweepRunner::new().run(&spec).unwrap();
        assert_eq!(report.cells.len(), 2);
        let by_ka = |label: &str| {
            report
                .cells
                .iter()
                .find(|c| c.key.keepalive == label)
                .expect("cell present")
        };
        let cold = by_ka("cold");
        let warm = by_ka("fixed:60");
        // A classic cell's pool starts empty: the warm-state-aware pipeline
        // reduces to the cold one bit for bit.
        assert!(cold.is_ok() && warm.is_ok());
        assert_eq!(cold.packing_degree, warm.packing_degree);
        assert_eq!(cold.instances, warm.instances);
        assert_eq!(cold.service_secs.to_bits(), warm.service_secs.to_bits());
        assert_eq!(cold.expense_usd.to_bits(), warm.expense_usd.to_bits());
        // The key (and only the key) records the scenario.
        assert!(warm.key.compact().ends_with("/kfixed:60"));
        assert!(!cold.key.compact().contains("/k"));
        assert!(warm.render_line().contains("\tka=fixed:60\t"));
        assert!(!cold.render_line().contains("ka="));
    }

    #[test]
    fn keepalive_replay_sweeps_reuse_warm_and_stay_thread_invariant() {
        use crate::keepalive::KeepAliveScenario;
        use propack_model::Objective;
        use propack_replay::ArrivalTrace;
        // A cost-aware controller, mirroring the EXPERIMENTS keep-alive
        // grid: warm reuse earns the storage credit without unpacking. The
        // credit is a cut of the *storage* bill, so the workload needs one.
        let trace = ArrivalTrace::diurnal("w", 1.0, 0.8, 600.0, 600.0, 11).expect("trace");
        let spec = SweepSpec::new("replay-keepalive")
            .platforms([PlatformAxis::Aws])
            .workloads([work("w").with_storage(0.01, 4)])
            .concurrency([1])
            .policies([PackingPolicy::NoPacking])
            .seeds([7, 8])
            .replay(ReplayGrid::new(trace, 100.0).objective(Objective::Expense))
            .controllers([
                Controller::Oracle,
                Controller::parse("propack:ewma").expect("controller"),
            ])
            .fit_config(ProPackConfig {
                scaling_levels: vec![10, 20, 40],
                ..ProPackConfig::default()
            })
            .keepalive([
                KeepAliveScenario::cold(),
                KeepAliveScenario::parse("fixed:200").unwrap(),
            ]);
        let serial = SweepRunner::new().run(&spec).unwrap();
        assert_eq!(serial.cells.len(), 8);
        assert_eq!(serial.error_count(), 0);
        for threads in [2, 4] {
            let parallel = SweepRunner::new().threads(threads).run(&spec).unwrap();
            assert_eq!(serial.render(), parallel.render(), "threads={threads}");
        }
        // Replay pools persist across epochs, so warm reuse changes the
        // realized numbers (unlike classic cells): the cost-aware
        // controller's bill strictly improves.
        let find = |controller: &str, seed: u64, label: &str| {
            serial
                .cells
                .iter()
                .find(|c| {
                    c.key.controller == controller && c.key.seed == seed && c.key.keepalive == label
                })
                .expect("cell present")
        };
        for seed in [7, 8] {
            let cold = find("propack-ewma", seed, "cold");
            let warm = find("propack-ewma", seed, "fixed:200");
            assert!(
                warm.expense_usd < cold.expense_usd,
                "seed {seed}: warm reuse cuts the bill: {} vs {}",
                warm.expense_usd,
                cold.expense_usd
            );
        }
    }

    fn workflow_spec(name: &str) -> SweepSpec {
        SweepSpec::new(name)
            .platforms([PlatformAxis::Aws])
            .workloads([work("w")])
            .concurrency([200])
            .policies([PackingPolicy::NoPacking, PackingPolicy::propack_default()])
            .seeds([7, 8])
            .workflows(["task", "seq-map", "diamond", "mixed:cpu+io"])
    }

    #[test]
    fn workflow_axis_stays_thread_count_invariant() {
        let spec = workflow_spec("workflow-threads");
        let serial = SweepRunner::new().run(&spec).unwrap();
        assert_eq!(serial.cells.len(), 16);
        assert_eq!(serial.error_count(), 0);
        for threads in [2, 4, 8] {
            let parallel = SweepRunner::new().threads(threads).run(&spec).unwrap();
            assert_eq!(serial.render(), parallel.render(), "threads={threads}");
        }
        // Every workflow cell's key and line carry the shape.
        for cell in &serial.cells {
            assert!(!cell.key.workflow.is_empty());
            assert!(cell
                .render_line()
                .contains(&format!("\twf={}", cell.key.workflow)));
        }
    }

    #[test]
    fn workflow_cells_share_fits_with_each_other() {
        // The propack cells fit `w` (task/seq-map/diamond cpu branch share
        // the same profile name only for task; seq-map adds the coordinator
        // and diamond adds cpu/io variants) — what matters is that repeat
        // (platform, workload, config) triples never re-fit across seeds.
        let spec = workflow_spec("workflow-cache");
        let models = ModelCache::new();
        let report = SweepRunner::new().run_with_cache(&spec, &models).unwrap();
        assert_eq!(report.error_count(), 0);
        // Distinct profiles fitted: `w` (task/seq-map/diamond cpu branch
        // share it) and the diamond's `w-io` variant. Coordinators and
        // non-propack cells never consult the cache.
        assert_eq!(report.fitted_models, 2);
        assert!(report.fit_hits > 0, "seeds and shapes must reuse fits");
    }

    #[test]
    fn workflow_cells_respect_the_packing_policy_axis() {
        // Packing shrinks the diamond's fan-out instance count; no-packing
        // keeps one function per instance.
        let base = SweepSpec::new("workflow-packing")
            .platforms([PlatformAxis::Aws])
            .workloads([work("w")])
            .concurrency([200])
            .seeds([7])
            .workflows(["seq-map"]);
        let report = SweepRunner::new()
            .run(&base.policies([
                PackingPolicy::NoPacking,
                PackingPolicy::Fixed(4),
                PackingPolicy::propack_default(),
            ]))
            .unwrap();
        assert_eq!(report.error_count(), 0);
        let by_policy = |label: &str| {
            report
                .cells
                .iter()
                .find(|c| c.key.policy == label)
                .expect("cell present")
        };
        let unpacked = by_policy("no-packing");
        let fixed = by_policy("fixed-4");
        let planned = by_policy("propack-joint-0.5");
        assert_eq!(unpacked.packing_degree, 1);
        assert_eq!(fixed.packing_degree, 4);
        assert!(planned.packing_degree > 1, "ProPack must pack the fan-out");
        // 200 fan-out functions + 2 coordinator tasks.
        assert_eq!(unpacked.instances, 202);
        assert!(fixed.instances < unpacked.instances);
    }

    #[test]
    fn replay_and_classic_cells_coexist_across_specs_in_one_cache() {
        // The same cache serves a classic grid and a replay grid without
        // contaminating either (fit keys exclude replay parameters).
        let models = ModelCache::new();
        let classic = SweepRunner::new()
            .run_with_cache(&small_spec(), &models)
            .unwrap();
        let replay = SweepRunner::new()
            .threads(2)
            .run_with_cache(&replay_spec("mixed"), &models)
            .unwrap();
        assert!(classic.cells.iter().all(|c| c.key.controller == "off"));
        assert!(replay.cells.iter().all(|c| c.key.controller != "off"));
        assert_eq!(replay.error_count(), 0);
    }
}
