//! Fluent construction of simulated platforms.
//!
//! [`PlatformBuilder`] is the front door for making a [`CloudPlatform`]:
//! start from a provider preset (or a custom [`PlatformProfile`]), override
//! the fleet shape, the price sheet, or the default tracing mode, and
//! `build()`. It replaced the loose `PlatformProfile::…().into_platform()`
//! chains the bench binaries used to hand-roll; the deprecated free
//! constructors have since been removed.
//!
//! ```
//! use propack_platform::prelude::*;
//!
//! let platform = PlatformBuilder::aws()
//!     .fleet(100, 16)
//!     .tracing(true)
//!     .build();
//! assert_eq!(platform.profile().control.fleet_servers, 100);
//! assert!(platform.tracing_enabled());
//! ```

use crate::platform::CloudPlatform;
use crate::profile::{PlatformProfile, PriceSheet, Provider};

/// Step-by-step construction of a [`CloudPlatform`].
///
/// The builder owns a [`PlatformProfile`] (seeded from a preset) plus the
/// platform-level options that are not part of the calibration itself
/// (currently: whether runs trace by default). Every method is chainable
/// and order-independent; `build()` is infallible because every
/// intermediate state is a valid platform.
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    profile: PlatformProfile,
    tracing: bool,
}

impl PlatformBuilder {
    /// Start from the preset calibration for `provider`.
    pub fn new(provider: Provider) -> Self {
        Self::from_profile(PlatformProfile::preset(provider))
    }

    /// Start from an explicit (possibly hand-tuned) calibration.
    pub fn from_profile(profile: PlatformProfile) -> Self {
        PlatformBuilder {
            profile,
            tracing: false,
        }
    }

    /// AWS Lambda preset — the paper's primary testbed.
    pub fn aws() -> Self {
        Self::new(Provider::AwsLambda)
    }

    /// Google Cloud Functions preset.
    pub fn google() -> Self {
        Self::new(Provider::GoogleCloudFunctions)
    }

    /// Azure Functions preset.
    pub fn azure() -> Self {
        Self::new(Provider::AzureFunctions)
    }

    /// FuncX-style on-prem cluster preset.
    pub fn funcx() -> Self {
        Self::new(Provider::FuncX)
    }

    /// Override the datacenter fleet shape: `servers` machines with `slots`
    /// microVM slots each. `servers × slots` bounds admitted concurrency.
    pub fn fleet(mut self, servers: u32, slots: u32) -> Self {
        self.profile.control.fleet_servers = servers;
        self.profile.control.fleet_slots = slots;
        self
    }

    /// Replace the billing rates wholesale.
    pub fn prices(mut self, prices: PriceSheet) -> Self {
        self.profile.prices = prices;
        self
    }

    /// Whether bursts on this platform trace lifecycle events by default
    /// (see [`CloudPlatform::run_burst_observed`]). Off by default: large
    /// sweeps should pay only a branch per event.
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Arbitrary calibration tweak — escape hatch for experiments that need
    /// to vary a constant the builder has no dedicated method for.
    pub fn tune(mut self, f: impl FnOnce(&mut PlatformProfile)) -> Self {
        f(&mut self.profile);
        self
    }

    /// The calibration as configured so far.
    pub fn profile(&self) -> &PlatformProfile {
        &self.profile
    }

    /// Finish: produce the platform.
    pub fn build(self) -> CloudPlatform {
        CloudPlatform::new(self.profile).with_tracing(self.tracing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::ServerlessPlatform;

    #[test]
    fn builder_defaults_match_presets() {
        for prov in [
            Provider::AwsLambda,
            Provider::GoogleCloudFunctions,
            Provider::AzureFunctions,
            Provider::FuncX,
        ] {
            let built = PlatformBuilder::new(prov).build();
            assert_eq!(*built.profile(), PlatformProfile::preset(prov));
            assert!(!built.tracing_enabled());
        }
    }

    #[test]
    fn shorthand_constructors_pick_the_right_provider() {
        assert_eq!(
            PlatformBuilder::aws().profile().provider,
            Provider::AwsLambda
        );
        assert_eq!(
            PlatformBuilder::google().profile().provider,
            Provider::GoogleCloudFunctions
        );
        assert_eq!(
            PlatformBuilder::azure().profile().provider,
            Provider::AzureFunctions
        );
        assert_eq!(PlatformBuilder::funcx().profile().provider, Provider::FuncX);
    }

    #[test]
    fn fleet_and_prices_overrides_apply() {
        let sheet = PriceSheet {
            usd_per_gb_sec: 1.0,
            usd_per_request: 2.0,
            usd_per_storage_request: 3.0,
            usd_per_storage_gb: 4.0,
            usd_per_network_gb: 5.0,
        };
        let p = PlatformBuilder::aws().fleet(7, 3).prices(sheet).build();
        assert_eq!(p.profile().control.fleet_servers, 7);
        assert_eq!(p.profile().control.fleet_slots, 3);
        assert_eq!(p.prices(), sheet);
    }

    #[test]
    fn tune_reaches_arbitrary_constants() {
        let p = PlatformBuilder::aws()
            .tune(|prof| prof.instance.cores = 12)
            .build();
        assert_eq!(p.limits().cores, 12);
    }

    #[test]
    fn built_platform_behaves_identically_to_direct_construction() {
        use crate::burst::BurstSpec;
        use crate::work::WorkProfile;
        let spec = BurstSpec::new(WorkProfile::synthetic("w", 0.25, 10.0), 50, 1).with_seed(11);
        let via_builder = PlatformBuilder::aws().build().run_burst(&spec).unwrap();
        let direct = CloudPlatform::new(PlatformProfile::aws_lambda())
            .run_burst(&spec)
            .unwrap();
        assert_eq!(via_builder, direct);
    }
}
