//! A bioinformatics HPC campaign: massively parallel Smith-Waterman protein
//! search on serverless (the paper's Fig. 17 scenario).
//!
//! ```sh
//! cargo run --release --example bioinformatics_campaign
//! ```
//!
//! Runs the *real* Smith-Waterman kernel locally to show what one function
//! computes, then scales the campaign to thousands of concurrent functions
//! on the simulated platform and shows why compute-intensive codes should
//! pack far below their memory-permitted maximum.

use propack_repro::baselines::{NoPacking, Oracle, OracleObjective, Strategy};
use propack_repro::platform::PlatformBuilder;
use propack_repro::propack::optimizer::Objective;
use propack_repro::propack::propack::{ProPackConfig, Propack};
use propack_repro::stats::percentile::Percentile;
use propack_repro::workloads::smith_waterman::{
    smith_waterman, synth_protein, GapPenalty, SmithWaterman,
};
use propack_repro::workloads::Workload;

fn main() {
    // --- What one serverless function does: real local alignments. ---
    let query = synth_protein(7, 120);
    println!(
        "one function aligns a {}-residue query against a DB shard:",
        query.len()
    );
    for s in 0..4 {
        let target = synth_protein(100 + s, 180);
        let aln = smith_waterman(&query, &target, GapPenalty::default());
        println!(
            "  shard seq {s}: score {:>3}, alignment ends at (q={}, t={})",
            aln.score, aln.query_end, aln.target_end
        );
    }

    // --- The campaign: C = 5000 concurrent comparisons. ---
    let platform = PlatformBuilder::aws().build();
    let work = SmithWaterman::default().profile();
    let c = 5000;

    let pp = Propack::build(&platform, &work, &ProPackConfig::default()).expect("build");
    let plan = pp.plan(c, Objective::default()).expect("plan");
    println!(
        "\nmemory permits packing {} functions, but profiling found only {} fit \
         under the 900s execution cap; ProPack plans degree {} — compute-bound \
         functions interfere hard, so aggressive packing would backfire",
        work.max_packing_degree(10.0),
        pp.model.p_max,
        plan.packing_degree
    );

    // Verify against the brute-force Oracle.
    let oracle = Oracle
        .search(
            &platform,
            &work,
            c,
            OracleObjective::Joint {
                w_s: 0.5,
                metric: Percentile::Total,
            },
            9,
        )
        .expect("oracle");
    println!(
        "brute-force oracle degree: {} (ProPack predicted {})",
        oracle.packing_degree, plan.packing_degree
    );

    let packed = pp
        .execute(&platform, c, Objective::default(), 9)
        .expect("run");
    let base = NoPacking.run(&platform, &work, c, 9).expect("baseline");
    println!(
        "\ncampaign results: service {:.0}s -> {:.0}s ({:.0}% faster), \
         expense ${:.2} -> ${:.2} ({:.0}% cheaper)",
        base.total_service_secs(),
        packed.report.total_service_time(),
        100.0 * (1.0 - packed.report.total_service_time() / base.total_service_secs()),
        base.expense_usd,
        packed.expense_with_overhead_usd(),
        100.0 * (1.0 - packed.expense_with_overhead_usd() / base.expense_usd),
    );
}
