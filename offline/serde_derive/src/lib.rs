//! Offline stub for `serde_derive`: emits empty marker-trait impls for the
//! `serde` stub. Handles plain and generic `struct`/`enum` items well enough
//! for this workspace (which derives only on concrete types), and accepts —
//! and ignores — `#[serde(...)]` helper attributes.

use proc_macro::{TokenStream, TokenTree};

/// Extract the item identifier (the token after `struct`/`enum`) and any
/// `<...>` generic parameter list that follows it, rendered as text.
fn item_name(input: &TokenStream) -> Option<(String, String)> {
    let tokens: Vec<TokenTree> = input.clone().into_iter().collect();
    for i in 0..tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let kw = id.to_string();
            if kw != "struct" && kw != "enum" {
                continue;
            }
            if let Some(TokenTree::Ident(name)) = tokens.get(i + 1) {
                let mut generics = String::new();
                if let Some(TokenTree::Punct(p)) = tokens.get(i + 2) {
                    if p.as_char() == '<' {
                        let mut depth = 0i32;
                        for t in &tokens[i + 2..] {
                            let s = t.to_string();
                            generics.push_str(&s);
                            generics.push(' ');
                            if s == "<" {
                                depth += 1;
                            } else if s == ">" {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                        }
                    }
                }
                return Some((name.to_string(), generics));
            }
        }
    }
    None
}

/// Parameter names from a generics list (`<T: Clone, const N: usize>` →
/// `<T, N>`), for the use-site angle brackets.
fn generic_args(generics: &str) -> String {
    let mut args: Vec<String> = Vec::new();
    let mut depth = 0i32;
    let mut take_next = false;
    for t in generics.split_whitespace() {
        match t {
            "<" => {
                depth += 1;
                if depth == 1 {
                    take_next = true;
                }
            }
            ">" => depth -= 1,
            "," if depth == 1 => take_next = true,
            "const" | "mut" => {}
            _ if take_next && depth == 1 => {
                args.push(t.trim_start_matches('\'').to_string());
                take_next = false;
            }
            _ => {}
        }
    }
    if args.is_empty() {
        String::new()
    } else {
        format!("<{}>", args.join(", "))
    }
}

/// Inner text of the generics list, without the outer angle brackets.
fn generic_params(generics: &str) -> &str {
    generics
        .trim()
        .strip_prefix('<')
        .and_then(|g| g.strip_suffix('>'))
        .unwrap_or("")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Some((name, generics)) = item_name(&input) else {
        return TokenStream::new();
    };
    let args = generic_args(&generics);
    format!("impl{generics} serde::Serialize for {name}{args} {{}}")
        .parse()
        .unwrap_or_default()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Some((name, generics)) = item_name(&input) else {
        return TokenStream::new();
    };
    let args = generic_args(&generics);
    let code = if generics.is_empty() {
        format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
    } else {
        format!(
            "impl<'de, {}> serde::Deserialize<'de> for {name}{args} {{}}",
            generic_params(&generics)
        )
    };
    code.parse().unwrap_or_default()
}
