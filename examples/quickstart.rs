//! Quickstart: pack a bursty serverless application with ProPack.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the AWS Lambda simulator, profiles a Video-like application,
//! plans the optimal packing degree for a 5 000-way concurrent burst, and
//! compares the packed run against the traditional no-packing spawn.

use propack_repro::baselines::{NoPacking, Strategy};
use propack_repro::platform::PlatformBuilder;
use propack_repro::propack::optimizer::Objective;
use propack_repro::propack::propack::{ProPackConfig, Propack};
use propack_repro::workloads::{video::Video, Workload};

fn main() {
    // 1. A serverless platform. The simulator stands in for AWS Lambda —
    //    same observable behaviour: burst timestamps and an itemized bill.
    let platform = PlatformBuilder::aws().build();

    // 2. An application: the Thousand-Island-Scanner-style video pipeline.
    let work = Video::default().profile();
    println!(
        "application: {} (M_func = {} GB, max packing degree = {})",
        work.name,
        work.mem_gb,
        work.max_packing_degree(10.0)
    );

    // 3. Build ProPack: a short profiling campaign (alternate packing
    //    degrees at low concurrency + ten application-independent scaling
    //    probes), then the Eq. 1 / Eq. 2 model fits.
    let pp = Propack::build(&platform, &work, &ProPackConfig::default()).expect("profiling failed");
    println!(
        "fitted interference: ET(P) = {:.1}·e^({:.4}·P) s   (alpha = {:.4}/GB)",
        pp.model.interference.base,
        pp.model.interference.rate,
        pp.model.interference.alpha()
    );
    println!(
        "fitted scaling: {:.2e}·C² + {:.3}·C − {:.1} s   (R² = {:.4})",
        pp.model.scaling.beta1,
        pp.model.scaling.beta2,
        pp.model.scaling.beta3,
        pp.model.scaling.r_squared
    );
    println!(
        "profiling overhead: {} bursts, ${:.2}",
        pp.overhead.bursts, pp.overhead.expense_usd
    );

    // 4. Plan and execute a 5000-way concurrent burst.
    let c = 5000;
    let plan = pp.plan(c, Objective::default()).expect("plan");
    println!(
        "\nplan for C = {c}: pack {} functions/instance -> {} instances",
        plan.packing_degree, plan.instances
    );

    let packed = pp
        .execute(&platform, c, Objective::default(), 42)
        .expect("packed run");
    let baseline = NoPacking
        .run(&platform, &work, c, 42)
        .expect("baseline run");

    // 5. Compare.
    let s_base = baseline.total_service_secs();
    let s_packed = packed.report.total_service_time();
    let e_base = baseline.expense_usd;
    let e_packed = packed.expense_with_overhead_usd();
    println!("\n                 no packing    propack");
    println!("service time     {s_base:>8.0} s   {s_packed:>7.0} s");
    println!("expense          {e_base:>8.2} $   {e_packed:>7.2} $");
    println!(
        "improvement      service {:.0}%, expense {:.0}% (incl. profiling overhead)",
        100.0 * (1.0 - s_packed / s_base),
        100.0 * (1.0 - e_packed / e_base)
    );
}
