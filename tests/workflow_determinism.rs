//! The workflow engine's determinism contract, pinned end to end
//! (DESIGN.md §14): a sweep over every shipped DAG shape renders
//! byte-identically at `--threads 1/4/8`, Parallel branch order is
//! irrelevant, a single-Task workflow reproduces the flat pooled burst
//! **bit for bit**, and a golden diamond-DAG fixture freezes the full
//! packed replay — stage rows, critical path, and bill.

use std::fs;
use std::path::PathBuf;

use propack_repro::prelude::*;
use propack_repro::workflow::{leaf_seed, run_workflow, MapPacking, State, Workflow, WorkflowSpec};
use propack_repro::workloads::Benchmarks;

fn sort_profile() -> WorkProfile {
    Benchmarks::resolve("sort")
        .expect("sort benchmark exists")
        .profile()
}

fn workflow_grid() -> SweepSpec {
    SweepSpec::new("wf-determinism")
        .platforms([PlatformAxis::Aws])
        .workloads([sort_profile()])
        .concurrency([120])
        .policies([
            PackingPolicy::NoPacking,
            PackingPolicy::Fixed(4),
            PackingPolicy::propack_default(),
        ])
        .workflows(["task", "seq-map", "diamond", "mixed:cpu+io"])
        .seeds([11])
}

#[test]
fn workflow_sweep_renders_byte_identically_across_thread_counts() {
    let spec = workflow_grid();
    assert_eq!(spec.cell_count(), 12);
    let reference = SweepRunner::new().run(&spec).unwrap().render();
    assert!(reference.contains("wf=diamond"), "{reference}");
    assert!(reference.contains("wf=mixed:cpu+io"), "{reference}");
    for threads in [4, 8] {
        let rendered = SweepRunner::new()
            .threads(threads)
            .run(&spec)
            .unwrap()
            .render();
        assert_eq!(
            reference.as_bytes(),
            rendered.as_bytes(),
            "threads={threads} workflow sweep diverged from serial"
        );
    }
}

#[test]
fn parallel_branch_order_is_irrelevant() {
    // Leaf seeds hang off (name, ordinal) identity and ready events are
    // scheduled in canonical order, so shuffling the branches of a
    // Parallel must not move a single bit of the report.
    let platform = PlatformBuilder::aws().build();
    let models = ModelCache::new();
    let branches = |order: &[usize]| -> Vec<State> {
        let all = [
            State::Map {
                name: "alpha".into(),
                work: WorkProfile::synthetic("alpha", 0.5, 60.0).with_contention(0.12),
                concurrency: 80,
                packing: MapPacking::Fixed(4),
            },
            State::Map {
                name: "beta".into(),
                work: WorkProfile::synthetic("beta", 1.0, 90.0).with_contention(0.2),
                concurrency: 50,
                packing: MapPacking::ProPack { w_s: 0.5 },
            },
            State::Task {
                name: "gamma".into(),
                work: WorkProfile::synthetic("gamma", 0.25, 30.0),
            },
        ];
        order.iter().map(|&i| all[i].clone()).collect()
    };
    let run = |order: &[usize]| {
        let spec = WorkflowSpec::new(Workflow::new("shuffle", State::Parallel(branches(order))))
            .with_seed(17);
        run_workflow(&platform, &spec, &models).expect("workflow runs")
    };
    let reference = run(&[0, 1, 2]);
    for order in [[2, 1, 0], [1, 2, 0], [2, 0, 1]] {
        let shuffled = run(&order);
        assert_eq!(reference, shuffled, "order {order:?} changed the report");
        assert_eq!(
            reference.render().as_bytes(),
            shuffled.render().as_bytes(),
            "order {order:?} changed the rendered bytes"
        );
    }
}

#[test]
fn single_task_workflow_is_bit_identical_to_flat_pooled_burst() {
    // The reduction argument: a Task leaf is exactly one pooled burst with
    // the leaf's identity seed, so the workflow machinery must be invisible
    // — including under faults, retries, and a warm pool.
    let platform = PlatformBuilder::aws().build();
    let work = sort_profile();
    let faults = FaultSpec::none().with_crash_rate(0.05);
    let retry = RetryPolicy::default();
    let spec = WorkflowSpec::from_shape("task", &work, 1, MapPacking::None)
        .expect("task shape")
        .with_seed(42)
        .with_faults(faults, retry)
        .with_keepalive(KeepAlivePolicy::FixedKeepAlive { idle_ttl: 60.0 });
    let report = run_workflow(&platform, &spec, &ModelCache::new()).expect("workflow runs");

    let mut pool = WarmPool::new(spec.pool_config(platform.placement_secs()));
    let flat = BurstRequest::new(work.clone(), 1, 1)
        .with_seed(leaf_seed(spec.seed, &work.name, 0))
        .with_faults(spec.faults)
        .with_retry(spec.retry)
        .run_pooled(&platform, &mut pool, 0.0)
        .expect("flat burst runs");

    assert_eq!(report.stages.len(), 1);
    assert_eq!(
        report.makespan_secs.to_bits(),
        flat.total_service_secs().to_bits(),
        "makespan != flat service: {} vs {}",
        report.makespan_secs,
        flat.total_service_secs()
    );
    assert_eq!(report.expense_usd.to_bits(), flat.expense_usd().to_bits());
    assert_eq!(
        report.function_hours.to_bits(),
        flat.function_hours().to_bits()
    );
    assert_eq!(report.stages[0].instances, flat.instances());
    assert_eq!(report.stages[0].warm_grants, flat.warm_grants);
    assert_eq!(report.faults.retries, flat.faults().retries);
}

/// The golden diamond fixture pins the full packed DAG replay — split /
/// cpu-branch / io-branch / join rows, ProPack degrees, the realized
/// critical path, and every fixed-precision figure. Regenerate only when
/// *intentionally* changing simulated behaviour:
///
/// ```text
/// UPDATE_GOLDEN=1 cargo test --test workflow_determinism golden_diamond
/// ```
#[test]
fn golden_diamond_dag_fixture() {
    let platform = PlatformBuilder::aws().build();
    let spec = WorkflowSpec::from_shape(
        "diamond",
        &sort_profile(),
        200,
        MapPacking::ProPack { w_s: 0.5 },
    )
    .expect("diamond shape")
    .with_seed(42);
    let current = run_workflow(&platform, &spec, &ModelCache::new())
        .expect("diamond replays")
        .render();

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("workflow_diamond.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, &current).expect("write golden fixture");
        return;
    }
    let golden = fs::read_to_string(&path)
        .expect("missing tests/golden/workflow_diamond.txt (run with UPDATE_GOLDEN=1)");
    assert_eq!(
        golden, current,
        "golden diamond workflow diverged from the fixture"
    );
}
