//! Mixed-application instances: the heterogeneous-packing extension.
//!
//! §5 of the paper: *"packing functions of different characteristics
//! present new modeling challenges — ProPack can be extended to account for
//! those, but it does not do so currently."* This module is that extension's
//! substrate: instances that co-locate functions of **different**
//! applications, with an interference mechanism that degenerates exactly to
//! the homogeneous model when only one application is present.
//!
//! Mechanism: every resident function contributes contention pressure
//! `rate_j = contention_per_gb_j × mem_gb_j` to the instance. A function of
//! type `i` experiences every co-resident's pressure except one count of
//! its own:
//!
//! ```text
//! slowdown_i = exp( Σ_j n_j·rate_j − rate_i ) · timeslice(Σ n_j)
//! ```
//!
//! With a single application (`n` copies of one type) this is
//! `exp(rate·(n−1))` — identical to [`crate::instance::packed_exec_secs`].

use crate::billing::{bill_burst, Expense};
use crate::burst::BurstSpec;
use crate::error::PlatformError;
use crate::profile::InstanceProfile;
use crate::report::RunReport;
use crate::work::WorkProfile;
use crate::{CloudPlatform, ServerlessPlatform};
use serde::{Deserialize, Serialize};

/// Composition of one mixed instance: how many copies of each application
/// share it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixSpec {
    /// `(workload, copies per instance)` for each application in the mix.
    pub parts: Vec<(WorkProfile, u32)>,
}

impl MixSpec {
    /// A mix of two applications.
    pub fn pair(a: (WorkProfile, u32), b: (WorkProfile, u32)) -> Self {
        MixSpec { parts: vec![a, b] }
    }

    /// Total functions per instance.
    pub fn degree(&self) -> u32 {
        self.parts.iter().map(|(_, n)| n).sum()
    }

    /// Total memory per instance (GB).
    pub fn mem_gb(&self) -> f64 {
        self.parts.iter().map(|(w, n)| w.mem_gb * *n as f64).sum()
    }

    /// Total contention pressure of the instance (Σ n_j·rate_j).
    pub fn total_pressure(&self) -> f64 {
        self.parts
            .iter()
            .map(|(w, n)| w.contention_per_gb * w.mem_gb * *n as f64)
            .sum()
    }
}

/// Deterministic execution time of a type-`i` function inside a mixed
/// instance (see module docs for the mechanism).
pub fn mixed_exec_secs(inst: &InstanceProfile, mix: &MixSpec, part: usize) -> f64 {
    let (work, _) = &mix.parts[part];
    let own_rate = work.contention_per_gb * work.mem_gb;
    let pressure = mix.total_pressure() - own_rate;
    let excess = (mix.degree() as f64 - inst.cores as f64).max(0.0);
    let timeslice = 1.0 + inst.timeslice_penalty * excess;
    let colocation = if mix.degree() > 1 {
        inst.colocation_penalty
    } else {
        1.0
    };
    work.base_exec_secs * pressure.exp() * timeslice * colocation
}

/// Outcome of a mixed burst: one run report per application in the mix,
/// sharing the same control-plane timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedRunOutcome {
    /// Per-application reports, in `MixSpec::parts` order.
    pub per_app: Vec<RunReport>,
    /// Combined bill (compute billed once per instance; storage/network
    /// per function of each application).
    pub expense: Expense,
}

impl CloudPlatform {
    /// Execute `instances` mixed instances, each packed per `mix`.
    ///
    /// The control-plane cost depends only on the instance count (Fig. 5b's
    /// application-independence), so the mixed burst reuses the homogeneous
    /// pipeline with a representative profile and then assigns each
    /// application its own execution times from the mixed-interference
    /// mechanism.
    pub fn run_mixed_burst(
        &self,
        mix: &MixSpec,
        instances: u32,
        seed: u64,
    ) -> Result<MixedRunOutcome, PlatformError> {
        if mix.parts.is_empty() || mix.degree() == 0 || instances == 0 {
            return Err(PlatformError::EmptyBurst);
        }
        let limits = self.limits();
        if mix.mem_gb() > limits.mem_gb + 1e-9 {
            return Err(PlatformError::MemoryLimitExceeded {
                packing_degree: mix.degree(),
                mem_gb: mix.mem_gb() / mix.degree() as f64,
                limit_gb: limits.mem_gb,
            });
        }
        let inst = self.profile().instance;
        for part in 0..mix.parts.len() {
            let projected = mixed_exec_secs(&inst, mix, part) * (1.0 + inst.exec_jitter);
            if projected > limits.max_exec_secs {
                return Err(PlatformError::ExecutionTimeout {
                    projected_secs: projected,
                    limit_secs: limits.max_exec_secs,
                });
            }
        }

        // Control-plane timeline: run the pipeline once with a profile whose
        // footprint matches the mix (placement/build/ship are application-
        // independent). Use the slowest part's dependency load: a mixed
        // container initializes every runtime.
        let max_dep = mix
            .parts
            .iter()
            .map(|(w, _)| w.dependency_load_secs)
            .fold(0.0, f64::max);
        let carrier =
            WorkProfile::synthetic("mixed-carrier", mix.mem_gb() / mix.degree() as f64, 1.0)
                .with_dependency_load(max_dep);
        let timeline = self.run_burst(&BurstSpec::new(carrier, instances, 1).with_seed(seed))?;

        let mut per_app = Vec::with_capacity(mix.parts.len());
        let mut all_exec = Vec::new();
        for (part_idx, (work, copies)) in mix.parts.iter().enumerate() {
            let exec = mixed_exec_secs(&inst, mix, part_idx);
            let mut records = timeline.instances.clone();
            for r in records.iter_mut() {
                r.finished_at = r.started_at + exec;
                r.billed_secs = exec;
            }
            all_exec.push(exec);
            let app_expense = bill_burst(
                &self.profile().prices,
                work,
                0.0, // compute billed once for the whole instance, below
                &[],
                *copies,
            );
            let mut report = RunReport {
                platform: self.name(),
                workload: work.name.clone(),
                instances_requested: instances,
                packing_degree: *copies,
                instances: records,
                scaling: timeline.scaling,
                expense: app_expense,
                faults: timeline.faults,
            };
            // Storage/network components per function of this app.
            let functions = instances as f64 * *copies as f64;
            report.expense.storage_usd = functions
                * (work.storage_requests as f64 * self.profile().prices.usd_per_storage_request
                    + work.storage_gb * self.profile().prices.usd_per_storage_gb);
            report.expense.network_usd = functions
                * work.network_gb
                * crate::billing::PACKED_EGRESS_RESIDUAL
                * self.profile().prices.usd_per_network_gb;
            per_app.push(report);
        }

        // Instance compute bill: the instance runs until its slowest
        // resident finishes, at the configured (max) memory.
        let instance_secs = all_exec.iter().copied().fold(0.0, f64::max);
        let compute_usd = instance_secs
            * instances as f64
            * self.profile().instance.mem_gb
            * self.profile().prices.usd_per_gb_sec;
        let request_usd = instances as f64 * self.profile().prices.usd_per_request;
        let storage_usd: f64 = per_app.iter().map(|r| r.expense.storage_usd).sum();
        let network_usd: f64 = per_app.iter().map(|r| r.expense.network_usd).sum();
        Ok(MixedRunOutcome {
            per_app,
            expense: Expense {
                compute_usd,
                request_usd,
                storage_usd,
                network_usd,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::instance::packed_exec_secs;
    use crate::profile::PlatformProfile;

    fn aws() -> CloudPlatform {
        PlatformBuilder::aws().build()
    }

    fn light() -> WorkProfile {
        WorkProfile::synthetic("light", 0.25, 100.0).with_contention(0.18)
    }

    fn heavy() -> WorkProfile {
        WorkProfile::synthetic("heavy", 0.64, 80.0).with_contention(0.1406)
    }

    #[test]
    fn homogeneous_mix_matches_packed_model() {
        // n copies of one app in a "mix" must reproduce the homogeneous
        // interference exactly.
        let inst = PlatformProfile::aws_lambda().instance;
        for n in [1u32, 3, 8, 15] {
            let mix = MixSpec {
                parts: vec![(light(), n)],
            };
            let mixed = mixed_exec_secs(&inst, &mix, 0);
            let homo = packed_exec_secs(&inst, &light(), n);
            assert!((mixed - homo).abs() < 1e-9, "n={n}: {mixed} vs {homo}");
        }
    }

    #[test]
    fn cross_app_interference_is_mutual() {
        // Adding heavy co-residents slows the light app more than adding
        // nothing, and vice versa.
        let inst = PlatformProfile::aws_lambda().instance;
        let solo = MixSpec {
            parts: vec![(light(), 1)],
        };
        let mixed = MixSpec::pair((light(), 1), (heavy(), 4));
        assert!(mixed_exec_secs(&inst, &mixed, 0) > mixed_exec_secs(&inst, &solo, 0));
        // And the heavy app sees the light one's pressure too.
        let heavy_solo = MixSpec {
            parts: vec![(heavy(), 4)],
        };
        let heavy_in_mix = mixed_exec_secs(&inst, &mixed, 1);
        let heavy_alone = mixed_exec_secs(&inst, &heavy_solo, 0);
        assert!(heavy_in_mix > heavy_alone);
    }

    #[test]
    fn mixed_burst_runs_and_bills_once_per_instance() {
        let p = aws();
        let mix = MixSpec::pair((light(), 4), (heavy(), 2));
        let out = p.run_mixed_burst(&mix, 100, 5).unwrap();
        assert_eq!(out.per_app.len(), 2);
        assert_eq!(out.per_app[0].instances.len(), 100);
        // Compute bill reflects the slowest resident's duration.
        let slow = out
            .per_app
            .iter()
            .map(|r| r.exec_summary().mean())
            .fold(0.0, f64::max);
        let want = slow * 100.0 * 10.0 * p.prices().usd_per_gb_sec;
        assert!((out.expense.compute_usd - want).abs() / want < 0.05);
        // One request fee per instance, not per function.
        assert!((out.expense.request_usd - 100.0 * p.prices().usd_per_request).abs() < 1e-12);
    }

    #[test]
    fn mixed_memory_cap_enforced() {
        let p = aws();
        let mix = MixSpec::pair((light(), 20), (heavy(), 10)); // 5 + 6.4 = 11.4 GB
        assert!(matches!(
            p.run_mixed_burst(&mix, 10, 1),
            Err(PlatformError::MemoryLimitExceeded { .. })
        ));
    }

    #[test]
    fn mixed_timeout_enforced() {
        let p = aws();
        let slow = WorkProfile::synthetic("slow", 0.25, 800.0).with_contention(0.5);
        let mix = MixSpec::pair((slow, 6), (light(), 2));
        assert!(matches!(
            p.run_mixed_burst(&mix, 5, 1),
            Err(PlatformError::ExecutionTimeout { .. })
        ));
    }

    #[test]
    fn empty_mix_rejected() {
        let p = aws();
        assert!(matches!(
            p.run_mixed_burst(&MixSpec { parts: vec![] }, 5, 1),
            Err(PlatformError::EmptyBurst)
        ));
        assert!(matches!(
            p.run_mixed_burst(
                &MixSpec {
                    parts: vec![(light(), 0)]
                },
                5,
                1
            ),
            Err(PlatformError::EmptyBurst)
        ));
    }
}
