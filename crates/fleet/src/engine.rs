//! The sharded multi-tenant fleet replay engine.
//!
//! Each epoch runs four phases:
//!
//! 1. **Plan** (serial, tenant-id order): for every tenant, count the
//!    window's arrivals, snapshot the shared warm pool, forecast → plan →
//!    observe — byte-for-byte the [`propack_replay::ReplayEngine`]
//!    sequence, with the tenant's own forecaster, model, and seed.
//! 2. **Admit** (serial, tenant-id order): convert each plan into an
//!    instance demand and reserve slots on the shared
//!    [`Fleet`](propack_platform::fleet::Fleet), least-loaded first.
//!    Saturation throttles arrivals in tenant-id order — the commutative
//!    occupancy-reservation protocol: because reservations are *counted*
//!    (a slot is a slot) and committed in a fixed order, the outcome is
//!    independent of which thread later executes which tenant. Warm
//!    containers are drawn from the shared pool here, too
//!    ([`WarmPool::acquire_counted`]).
//! 3. **Execute** (parallel): the admitted bursts run on the work-stealing
//!    pool (the sweep engine's deque idiom). Each job is a pure function
//!    of `(request, grant, now)` against the immutable platform — no
//!    shared mutable state — so any thread interleaving produces the same
//!    bits.
//! 4. **Reduce** (serial, tenant-id order): commit pool check-ins, free
//!    fleet slots, and accumulate per-tenant and fleet-level rows.
//!
//! Only phase 3 touches host threads; phases 1/2/4 pin the order every
//! shared structure is mutated in. `--threads N` output is therefore
//! byte-identical for any `N`, and a single-tenant fleet with ample
//! capacity reproduces the solo [`propack_replay::ReplayEngine`] replay
//! bit-for-bit (pinned by the `fleet_determinism` suite).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use propack_model::{cache::ModelCache, Objective, ProPackConfig, Propack};
use propack_platform::fleet::Fleet;
use propack_platform::warmpool::PoolSnapshot;
use propack_platform::{
    BurstRequest, FaultSpec, GrantedRun, KeepAlivePolicy, PlatformError, PoolGrant, RetryPolicy,
    ServerlessPlatform, WarmPool, WarmPoolConfig,
};
use propack_replay::{epoch_seed, Controller, EpochResult, Forecaster};
use propack_simcore::EpochTimeline;
use propack_stats::Percentile;

use crate::report::{FleetEpochRow, FleetReport, TenantRow};
use crate::tenant::TenantSpec;

/// Errors that abort a fleet replay before any epoch runs. Per-epoch
/// planning/platform failures are recorded on the tenant's row instead.
#[derive(Debug)]
pub enum FleetError {
    /// No tenants were supplied.
    NoTenants,
    /// Two tenants share a name; tenant-id order would be ambiguous.
    DuplicateTenant {
        /// The colliding name.
        name: String,
    },
    /// Every tenant's trace is empty: nothing to replay.
    NoArrivals,
    /// The epoch width or fleet horizon is degenerate.
    InvalidEpoch {
        /// The rejected epoch width.
        epoch_secs: f64,
    },
    /// The fleet has zero capacity.
    InvalidCapacity,
    /// A controller needs a ProPack model and the fit failed.
    Model(propack_model::ModelError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoTenants => write!(f, "fleet replay needs at least one tenant"),
            FleetError::DuplicateTenant { name } => {
                write!(f, "duplicate tenant name `{name}`")
            }
            FleetError::NoArrivals => write!(f, "every tenant trace is empty"),
            FleetError::InvalidEpoch { epoch_secs } => {
                write!(f, "invalid epoch width {epoch_secs}s")
            }
            FleetError::InvalidCapacity => write!(f, "fleet needs servers and slots"),
            FleetError::Model(e) => write!(f, "model fit failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<propack_model::ModelError> for FleetError {
    fn from(e: propack_model::ModelError) -> Self {
        FleetError::Model(e)
    }
}

/// Everything about a fleet replay except the tenants and platform.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Epoch (control window) width, seconds.
    pub epoch_secs: f64,
    /// Fleet-level seed: seeds the shared warm pool. Tenants carry their
    /// own seeds, so results are independent of this unless a pool policy
    /// draws randomness.
    pub seed: u64,
    /// Objective the planning controllers optimize.
    pub objective: Objective,
    /// Per-epoch tail-latency QoS bound, seconds.
    pub qos_secs: Option<f64>,
    /// Fault rates injected into every tenant's epoch bursts.
    pub faults: FaultSpec,
    /// Retry policy for faulted bursts.
    pub retry: RetryPolicy,
    /// Keep-alive policy for the *shared* warm pool. Tenants with the same
    /// workload profile share containers (the platform pools by function).
    pub keepalive: KeepAlivePolicy,
    /// Model-fit configuration (shared through [`ModelCache`]).
    pub fit_config: ProPackConfig,
    /// Shared fleet: number of servers.
    pub servers: u32,
    /// Shared fleet: microVM slots per server.
    pub slots_per_server: u32,
    /// Worker threads for the parallel burst phase. Output is
    /// byte-identical for any value; 1 executes inline.
    pub threads: usize,
    /// Fluid-kernel cohort floor passed through to every burst (see
    /// [`BurstRequest::with_fluid`]); `None` keeps the exact kernel.
    pub fluid_min_cohort: Option<u32>,
    /// Keep per-tenant per-epoch rows in the report (memory-heavy at
    /// fleet scale; required for solo-replay reconstruction).
    pub keep_tenant_epochs: bool,
}

impl Default for FleetSpec {
    fn default() -> Self {
        Self {
            epoch_secs: 60.0,
            seed: 42,
            objective: Objective::ServiceTime,
            qos_secs: None,
            faults: FaultSpec::none(),
            retry: RetryPolicy::no_retries(),
            keepalive: KeepAlivePolicy::ColdAlways,
            fit_config: ProPackConfig::default(),
            // The default cloud fleet (platform::fleet::default_cloud_fleet).
            servers: 2_000,
            slots_per_server: 16,
            threads: 1,
            fluid_min_cohort: None,
            keep_tenant_epochs: false,
        }
    }
}

/// The sharded fleet runner. See the module docs for the phase protocol.
#[derive(Debug, Clone, Default)]
pub struct FleetEngine {
    spec: FleetSpec,
}

/// Per-tenant planning state that lives across the whole replay.
struct TenantState {
    /// Index into the caller's tenant slice.
    input: usize,
    model: Option<Arc<Propack>>,
    forecaster: Option<Box<dyn Forecaster + Send>>,
    acc: TenantRow,
    degree_weight: BTreeMap<u32, u64>,
    epochs: Vec<EpochResult>,
}

/// One tenant's plan for the current epoch (phase 1 output).
struct Pending {
    arrivals: u32,
    forecast: Option<u32>,
    degree: u32,
    error: Option<String>,
    /// Filled by phase 2.
    admitted: u32,
    demand: u32,
    granted: u32,
    servers: Vec<u32>,
}

/// One admitted burst handed to the parallel phase.
struct EpochJob {
    /// Position in tenant-id order (phase 4 reduces by this key).
    pos: usize,
    request: BurstRequest,
    pool_grant: PoolGrant,
}

impl FleetEngine {
    /// Build an engine from a spec.
    pub fn new(spec: FleetSpec) -> Self {
        Self { spec }
    }

    /// The spec this engine runs.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// Replay `tenants` against one shared fleet on `platform`. Host
    /// timing fields in the report are zero; use
    /// [`FleetEngine::run_with_clock`] from a wall-clock-exempt crate to
    /// capture them.
    pub fn run<P: ServerlessPlatform + Sync + ?Sized>(
        &self,
        platform: &P,
        tenants: &[TenantSpec],
        models: &ModelCache,
    ) -> Result<FleetReport, FleetError> {
        self.run_with_clock(platform, tenants, models, &|| 0.0)
    }

    /// [`FleetEngine::run`] with an injected host clock for `fit_ms` /
    /// per-epoch `run_ms` capture. The clock influences timing fields
    /// only, never simulated results.
    pub fn run_with_clock<P: ServerlessPlatform + Sync + ?Sized>(
        &self,
        platform: &P,
        tenants: &[TenantSpec],
        models: &ModelCache,
        clock: &dyn Fn() -> f64,
    ) -> Result<FleetReport, FleetError> {
        let spec = &self.spec;
        if tenants.is_empty() {
            return Err(FleetError::NoTenants);
        }
        if spec.servers == 0 || spec.slots_per_server == 0 {
            return Err(FleetError::InvalidCapacity);
        }

        // Tenant-id order: results must not depend on input order, so every
        // serial phase walks tenants sorted by name.
        let mut order: Vec<usize> = (0..tenants.len()).collect();
        order.sort_by(|&a, &b| tenants[a].name.cmp(&tenants[b].name));
        for pair in order.windows(2) {
            if tenants[pair[0]].name == tenants[pair[1]].name {
                return Err(FleetError::DuplicateTenant {
                    name: tenants[pair[0]].name.clone(),
                });
            }
        }

        // One shared timeline over the longest tenant horizon. Silent
        // tenants (empty traces) are legal — the Azure population is mostly
        // quiet apps — but an entirely silent fleet is a configuration bug.
        let horizon = tenants
            .iter()
            .map(|t| t.trace.horizon_secs())
            .fold(0.0, f64::max);
        if tenants.iter().all(|t| t.trace.is_empty()) {
            return Err(FleetError::NoArrivals);
        }
        let timeline = EpochTimeline::over_horizon(spec.epoch_secs, horizon).ok_or(
            FleetError::InvalidEpoch {
                epoch_secs: spec.epoch_secs,
            },
        )?;

        // Fit models in tenant-id order. The cache coalesces identical
        // (platform, workload, config) keys, so a 1000-tenant fleet over 5
        // profiles pays 5 fits; the fleet's overhead bill counts each
        // distinct fit once, while each tenant row remembers the solo-replay
        // share its plans rely on.
        let fit_t0 = clock();
        let mut states: Vec<TenantState> = Vec::with_capacity(tenants.len());
        let mut fitted: BTreeSet<String> = BTreeSet::new();
        let mut model_overhead_usd = 0.0;
        for &i in &order {
            let t = &tenants[i];
            let (model, tenant_overhead) = if t.controller.needs_model() {
                let pp = models.fit(platform, &t.workload, &spec.fit_config)?;
                let overhead = pp.overhead.expense_usd;
                if fitted.insert(t.workload.name.clone()) {
                    model_overhead_usd += overhead;
                }
                (Some(pp), overhead)
            } else {
                (None, 0.0)
            };
            let forecaster = match &t.controller {
                Controller::Propack(kind) => Some(kind.build()),
                _ => None,
            };
            states.push(TenantState {
                input: i,
                model,
                forecaster,
                acc: blank_row(t, tenant_overhead),
                degree_weight: BTreeMap::new(),
                epochs: Vec::new(),
            });
        }
        let fit_ms = (clock() - fit_t0) * 1000.0;
        let distinct_fits = fitted.len() as u64;

        let mut pool = match spec.keepalive {
            KeepAlivePolicy::ColdAlways => None,
            policy => Some(WarmPool::new(
                WarmPoolConfig::cold()
                    .with_policy(policy)
                    .with_seed(spec.seed)
                    .with_placement_secs(platform.placement_secs()),
            )),
        };
        let mut fleet = Fleet::new(spec.servers, spec.slots_per_server);
        let capacity = fleet.capacity();

        let mut epoch_rows: Vec<FleetEpochRow> = Vec::with_capacity(timeline.len() as usize);
        for (k, start, end) in timeline.iter() {
            let include_end = k + 1 == timeline.len();
            let now = end.as_secs();
            if let Some(p) = pool.as_mut() {
                p.expire(now);
            }

            // Phase 1: plan (serial, tenant-id order). Mirrors the solo
            // EpochDriver exactly: snapshot → forecast → plan → observe.
            let mut pending: Vec<Pending> = Vec::with_capacity(states.len());
            for st in states.iter_mut() {
                let t = &tenants[st.input];
                let arrivals = t.trace.count_window(start, end, include_end);
                let snapshot: Option<PoolSnapshot> =
                    pool.as_ref().map(|p| p.snapshot(&t.workload.name, now));
                let forecast = st.forecaster.as_ref().and_then(|f| f.forecast());
                let mut error: Option<String> = None;
                let degree = match &t.controller {
                    Controller::NoPacking => 1,
                    Controller::Fixed(p) => *p,
                    Controller::Oracle => {
                        plan_degree(st, arrivals, spec.objective, snapshot.as_ref(), &mut error)
                            .unwrap_or(1)
                    }
                    Controller::Propack(_) => match forecast {
                        None | Some(0) => 1,
                        Some(c) => {
                            plan_degree(st, c, spec.objective, snapshot.as_ref(), &mut error)
                                .unwrap_or(1)
                        }
                    },
                };
                if let Some(f) = st.forecaster.as_mut() {
                    f.observe(arrivals);
                }
                pending.push(Pending {
                    arrivals,
                    forecast,
                    degree,
                    error,
                    admitted: 0,
                    demand: 0,
                    granted: 0,
                    servers: Vec::new(),
                });
            }

            // Phase 2: admit (serial, tenant-id order). Counted
            // reservations committed in a fixed order make the shared-fleet
            // outcome independent of phase-3 scheduling.
            let mut jobs: Vec<EpochJob> = Vec::new();
            for (pos, p) in pending.iter_mut().enumerate() {
                if p.arrivals == 0 || p.error.is_some() {
                    continue;
                }
                let t = &tenants[states[pos].input];
                let p_eff = p.degree.max(1).min(p.arrivals);
                p.demand = p.arrivals.div_ceil(p_eff);
                let free = u32::try_from(fleet.free()).unwrap_or(u32::MAX);
                p.granted = p.demand.min(free);
                p.admitted = if p.granted == p.demand {
                    p.arrivals
                } else {
                    let cap = u64::from(p.granted) * u64::from(p_eff);
                    u32::try_from(cap.min(u64::from(p.arrivals))).unwrap_or(p.arrivals)
                };
                if p.admitted == 0 {
                    continue;
                }
                let mut request = BurstRequest::new(Arc::clone(&t.workload), p.admitted, p.degree)
                    .with_seed(epoch_seed(t.seed, k))
                    .with_faults(spec.faults)
                    .with_retry(spec.retry);
                if let Some(mc) = spec.fluid_min_cohort {
                    request = request.with_fluid(mc);
                }
                // The round-0 instance count equals the granted slots by
                // construction (admitted = granted·p_eff, capped at the
                // arrivals); the warm pool serves at most that many.
                let want = request.round0_instances();
                debug_assert_eq!(want, p.granted);
                let pool_grant = pool
                    .as_mut()
                    .map(|pl| pl.acquire_counted(&t.workload.name, want, now))
                    .unwrap_or_else(PoolGrant::cold);
                for j in 0..want as usize {
                    // Free capacity ≥ want is guaranteed by the grant; the
                    // first `grants.len()` placements ride warm containers.
                    let warm = j < pool_grant.grants.len();
                    if let Some(placement) = fleet.place_with(warm) {
                        p.servers.push(placement.server);
                    }
                }
                jobs.push(EpochJob {
                    pos,
                    request,
                    pool_grant,
                });
            }

            // Phase 3: execute (parallel, pure). Results come back keyed by
            // tenant-id position; order of completion is irrelevant.
            let run_t0 = clock();
            let results = run_jobs(platform, &jobs, now, spec.threads);
            let run_ms = (clock() - run_t0) * 1000.0;

            // Phase 4: reduce (serial, tenant-id order): commit pool
            // check-ins, free slots, accumulate rows.
            let mut results = results.into_iter().peekable();
            let mut row_arrivals = 0u64;
            let mut row_admitted = 0u64;
            let mut row_throttled = 0u64;
            let mut row_demand = 0u64;
            let mut row_granted = 0u64;
            let mut row_warm = 0u64;
            let mut row_shared = 0u64;
            let peak_occupancy = fleet.peak_occupancy();
            for (pos, p) in pending.iter_mut().enumerate() {
                let st = &mut states[pos];
                let t = &tenants[st.input];
                let mut row = EpochResult {
                    epoch: k,
                    start_secs: start.as_secs(),
                    arrivals: p.arrivals,
                    forecast: p.forecast,
                    packing_degree: p.degree,
                    instances: 0,
                    service_secs: 0.0,
                    tail_secs: 0.0,
                    expense_usd: 0.0,
                    function_hours: 0.0,
                    retries: 0,
                    failed_functions: 0,
                    warm_grants: 0,
                    shared_grants: 0,
                    qos_violation: false,
                    // Fleet replays skip the oracle shadow: the regret
                    // instrumentation is the single-tenant replay's.
                    oracle_service_secs: None,
                    oracle_expense_usd: None,
                    error: p.error.take(),
                    run_ms: 0.0,
                };
                if results.peek().is_some_and(|&(rpos, _)| rpos == pos) {
                    if let Some((_, outcome)) = results.next() {
                        match outcome {
                            Ok(granted_run) => {
                                let run = &granted_run.run;
                                let faults = run.faults();
                                row.instances = run.instances();
                                row.service_secs = run.total_service_secs();
                                row.tail_secs = run
                                    .rounds
                                    .iter()
                                    .map(|r| r.service_time(Percentile::Tail95))
                                    .sum();
                                row.expense_usd = run.expense_usd();
                                row.function_hours = run.function_hours();
                                row.retries = faults.retries;
                                row.failed_functions = run.abandoned_functions;
                                row.warm_grants = run.warm_grants;
                                row.shared_grants = run.shared_grants;
                                row.qos_violation =
                                    spec.qos_secs.is_some_and(|q| row.tail_secs > q);
                                if let Some(pl) = pool.as_mut() {
                                    for &t_in in &granted_run.check_ins {
                                        pl.check_in(&t.workload.name, 1, t_in);
                                    }
                                }
                            }
                            Err(e) => row.error = Some(e.to_string()),
                        }
                    }
                }
                for &server in &p.servers {
                    fleet.release(server);
                }
                row_arrivals += u64::from(p.arrivals);
                row_admitted += u64::from(p.admitted);
                row_throttled += u64::from(p.arrivals - p.admitted.min(p.arrivals));
                row_demand += u64::from(p.demand);
                row_granted += u64::from(p.granted);
                row_warm += row.warm_grants;
                row_shared += row.shared_grants;
                accumulate(st, p, &row);
                if spec.keep_tenant_epochs {
                    st.epochs.push(row);
                }
            }
            epoch_rows.push(FleetEpochRow {
                epoch: k,
                start_secs: start.as_secs(),
                arrivals: row_arrivals,
                admitted: row_admitted,
                throttled: row_throttled,
                demand_instances: row_demand,
                granted_instances: row_granted,
                warm_grants: row_warm,
                shared_grants: row_shared,
                utilization: row_granted as f64 / capacity as f64,
                peak_occupancy,
                run_ms,
            });
        }

        // Finalize tenant rows: dominant degree is the arrivals-weighted
        // mode (ties → the larger degree; BTreeMap iteration makes
        // max_by_key's last-max deterministic).
        let mut tenant_rows: Vec<TenantRow> = Vec::with_capacity(states.len());
        let mut tenant_epochs: Option<Vec<Vec<EpochResult>>> = if spec.keep_tenant_epochs {
            Some(Vec::with_capacity(states.len()))
        } else {
            None
        };
        let mut labels: BTreeSet<String> = BTreeSet::new();
        for st in states.into_iter() {
            let mut acc = st.acc;
            acc.dominant_degree = st
                .degree_weight
                .iter()
                .max_by_key(|&(_, w)| *w)
                .map(|(&p, _)| p)
                .unwrap_or(1);
            labels.insert(acc.controller.clone());
            tenant_rows.push(acc);
            if let Some(rows) = tenant_epochs.as_mut() {
                rows.push(st.epochs);
            }
        }
        let controller = if labels.len() == 1 {
            labels.into_iter().next().unwrap_or_default()
        } else {
            "mixed".to_string()
        };

        Ok(FleetReport {
            platform: platform.name(),
            controller,
            epoch_secs: spec.epoch_secs,
            seed: spec.seed,
            qos_secs: spec.qos_secs,
            keepalive: spec.keepalive.label(),
            capacity,
            tenants: tenant_rows,
            epochs: epoch_rows,
            tenant_epochs,
            model_overhead_usd,
            distinct_fits,
            fit_ms,
        })
    }
}

/// A fresh accumulator row for one tenant.
fn blank_row(t: &TenantSpec, model_overhead_usd: f64) -> TenantRow {
    TenantRow {
        name: t.name.clone(),
        trace: t.trace.name().to_string(),
        workload: t.workload.name.clone(),
        controller: t.controller.label(),
        seed: t.seed,
        arrivals: 0,
        admitted: 0,
        throttled: 0,
        instances: 0,
        service_secs: 0.0,
        tail_secs: 0.0,
        expense_usd: 0.0,
        model_overhead_usd,
        function_hours: 0.0,
        retries: 0,
        failed_functions: 0,
        warm_grants: 0,
        shared_grants: 0,
        qos_violations: 0,
        max_degree: 0,
        dominant_degree: 1,
        forecast_abs_err_sum: 0.0,
        forecast_epochs: 0,
        errors: 0,
    }
}

/// Fold one epoch row into a tenant's accumulator.
fn accumulate(st: &mut TenantState, p: &Pending, row: &EpochResult) {
    let acc = &mut st.acc;
    acc.arrivals += u64::from(p.arrivals);
    acc.admitted += u64::from(p.admitted);
    acc.throttled += u64::from(p.arrivals - p.admitted.min(p.arrivals));
    acc.instances += u64::from(row.instances);
    acc.service_secs += row.service_secs;
    acc.tail_secs += row.tail_secs;
    acc.expense_usd += row.expense_usd;
    acc.function_hours += row.function_hours;
    acc.retries += row.retries;
    acc.failed_functions += row.failed_functions;
    acc.warm_grants += row.warm_grants;
    acc.shared_grants += row.shared_grants;
    if row.qos_violation {
        acc.qos_violations += 1;
    }
    if row.error.is_some() {
        acc.errors += 1;
    }
    acc.max_degree = acc.max_degree.max(row.packing_degree);
    if let Some(f) = row.forecast {
        acc.forecast_abs_err_sum += (f64::from(f) - f64::from(row.arrivals)).abs();
        acc.forecast_epochs += 1;
    }
    if row.arrivals > 0 {
        *st.degree_weight.entry(row.packing_degree).or_insert(0) += u64::from(row.arrivals);
    }
}

/// Plan a packing degree for concurrency `c` with the tenant's model;
/// `None` (with the error recorded) degrades the epoch to unpacked —
/// byte-for-byte the solo engine's `plan_degree`.
fn plan_degree(
    st: &TenantState,
    c: u32,
    objective: Objective,
    pool: Option<&PoolSnapshot>,
    error: &mut Option<String>,
) -> Option<u32> {
    if c == 0 {
        return Some(1);
    }
    let model = st.model.as_ref()?;
    let planned = match pool {
        Some(snapshot) => model.plan_with_pool(c, objective, snapshot),
        None => model.plan(c, objective),
    };
    match planned {
        Ok(plan) => Some(plan.packing_degree),
        Err(e) => {
            *error = Some(format!("plan failed: {e}"));
            None
        }
    }
}

/// Execute the epoch's admitted bursts, serially or on work-stealing
/// deques, returning results sorted by tenant-id position. Each job is a
/// pure read of the platform, so the schedule cannot affect the bits.
fn run_jobs<P: ServerlessPlatform + Sync + ?Sized>(
    platform: &P,
    jobs: &[EpochJob],
    now: f64,
    threads: usize,
) -> Vec<(usize, Result<GrantedRun, PlatformError>)> {
    let workers = threads.min(jobs.len()).max(1);
    let mut results: Vec<(usize, Result<GrantedRun, PlatformError>)> = if workers <= 1 {
        jobs.iter()
            .map(|j| (j.pos, j.request.run_granted(platform, &j.pool_grant, now)))
            .collect()
    } else {
        // Deal indices round-robin so each worker starts with a balanced,
        // deterministic share; stealing rebalances skewed tenants (the
        // heavy-tailed fleet's hot apps dominate one deque otherwise).
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..jobs.len()).step_by(workers).collect()))
            .collect();
        let mut out = Vec::with_capacity(jobs.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(i) = next_job(queues, w) {
                            let j = &jobs[i];
                            mine.push((j.pos, j.request.run_granted(platform, &j.pool_grant, now)));
                        }
                        mine
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(batch) => out.extend(batch),
                    // A worker panic is a simulator bug, not a tenant
                    // outcome; surface it instead of dropping tenants.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        out
    };
    results.sort_by_key(|&(pos, _)| pos);
    results
}

/// Claim the next job for worker `w`: own deque front first, then steal
/// from the back of the others. `None` drains the epoch.
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = lock(&queues[w]).pop_front() {
        return Some(i);
    }
    for step in 1..queues.len() {
        if let Some(i) = lock(&queues[(w + step) % queues.len()]).pop_back() {
            return Some(i);
        }
    }
    None
}

fn lock(queue: &Mutex<VecDeque<usize>>) -> MutexGuard<'_, VecDeque<usize>> {
    // A poisoned deque only means another worker panicked while holding
    // the guard; the indices themselves are still valid work.
    queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{synthetic_fleet, SyntheticFleetConfig};
    use propack_platform::PlatformBuilder;

    fn small_fit() -> ProPackConfig {
        ProPackConfig {
            scaling_levels: vec![10, 20, 40],
            ..ProPackConfig::default()
        }
    }

    fn small_fleet(apps: u32) -> Vec<TenantSpec> {
        synthetic_fleet(&SyntheticFleetConfig {
            apps,
            daily_invocations: f64::from(apps) * 40.0,
            horizon_secs: 600.0,
            ..SyntheticFleetConfig::default()
        })
        .expect("fleet generates")
    }

    #[test]
    fn thread_count_does_not_change_the_bits() {
        let platform = PlatformBuilder::aws().build();
        let tenants = small_fleet(12);
        let run = |threads: usize| {
            let spec = FleetSpec {
                epoch_secs: 120.0,
                threads,
                fit_config: small_fit(),
                keepalive: KeepAlivePolicy::FixedKeepAlive { idle_ttl: 120.0 },
                ..FleetSpec::default()
            };
            FleetEngine::new(spec)
                .run(&platform, &tenants, &ModelCache::default())
                .expect("fleet runs")
                .render()
        };
        let serial = run(1);
        assert_eq!(serial, run(4), "threads=4 diverged");
        assert_eq!(serial, run(8), "threads=8 diverged");
    }

    #[test]
    fn tenant_input_order_does_not_change_the_bits() {
        let platform = PlatformBuilder::aws().build();
        let tenants = small_fleet(8);
        let mut shuffled = tenants.clone();
        shuffled.reverse();
        shuffled.swap(0, 3);
        let spec = FleetSpec {
            epoch_secs: 120.0,
            threads: 4,
            fit_config: small_fit(),
            ..FleetSpec::default()
        };
        let a = FleetEngine::new(spec.clone())
            .run(&platform, &tenants, &ModelCache::default())
            .expect("fleet runs");
        let b = FleetEngine::new(spec)
            .run(&platform, &shuffled, &ModelCache::default())
            .expect("shuffled runs");
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn saturation_throttles_in_tenant_id_order() {
        let platform = PlatformBuilder::aws().build();
        // No-packing tenants (no model fits) against a toy fleet far below
        // the demand: someone must be throttled.
        let tenants = synthetic_fleet(&SyntheticFleetConfig {
            apps: 10,
            daily_invocations: 400.0,
            horizon_secs: 600.0,
            controller: Controller::NoPacking,
            ..SyntheticFleetConfig::default()
        })
        .expect("fleet generates");
        let spec = FleetSpec {
            epoch_secs: 120.0,
            servers: 1,
            slots_per_server: 2,
            ..FleetSpec::default()
        };
        let report = FleetEngine::new(spec)
            .run(&platform, &tenants, &ModelCache::default())
            .expect("fleet runs");
        assert!(report.total_throttled() > 0, "tiny fleet must throttle");
        assert!(report.contention() > 0.0);
        assert_eq!(
            report.total_admitted() + report.total_throttled(),
            report.total_arrivals()
        );
        // Early-name tenants keep admission priority: the first tenant
        // with arrivals is never fully starved while later ones are served.
        let first_active = report.tenants.iter().find(|t| t.arrivals > 0);
        if let Some(first) = first_active {
            assert!(first.admitted > 0, "tenant-id order admits the head");
        }
        // Utilization clamps at capacity.
        assert!(report.peak_utilization() <= 1.0 + 1e-12);
    }

    #[test]
    fn identical_profiles_coalesce_into_shared_fits() {
        let platform = PlatformBuilder::aws().build();
        let tenants = small_fleet(20);
        let models = ModelCache::default();
        let spec = FleetSpec {
            epoch_secs: 120.0,
            fit_config: small_fit(),
            ..FleetSpec::default()
        };
        let report = FleetEngine::new(spec)
            .run(&platform, &tenants, &models)
            .expect("fleet runs");
        let distinct: std::collections::BTreeSet<&str> =
            tenants.iter().map(|t| t.workload.name.as_str()).collect();
        assert_eq!(report.distinct_fits, distinct.len() as u64);
        assert_eq!(models.misses(), distinct.len() as u64);
        assert!(models.hits() >= (tenants.len() - distinct.len()) as u64);
    }

    #[test]
    fn empty_and_degenerate_fleets_are_rejected() {
        let platform = PlatformBuilder::aws().build();
        let models = ModelCache::default();
        let engine = FleetEngine::new(FleetSpec::default());
        assert!(matches!(
            engine.run(&platform, &[], &models),
            Err(FleetError::NoTenants)
        ));
        let tenants = small_fleet(2);
        let mut dup = tenants.clone();
        dup[1].name = dup[0].name.clone();
        assert!(matches!(
            engine.run(&platform, &dup, &models),
            Err(FleetError::DuplicateTenant { .. })
        ));
        let bad = FleetEngine::new(FleetSpec {
            epoch_secs: 0.0,
            ..FleetSpec::default()
        });
        assert!(matches!(
            bad.run(&platform, &tenants, &models),
            Err(FleetError::InvalidEpoch { .. })
        ));
        let no_cap = FleetEngine::new(FleetSpec {
            servers: 0,
            ..FleetSpec::default()
        });
        assert!(matches!(
            no_cap.run(&platform, &tenants, &models),
            Err(FleetError::InvalidCapacity)
        ));
    }
}
